// Package mcn is the goleak fixture. The import path ends in
// internal/mcn, one of the concurrency-gated packages, so every go
// statement here needs a provable termination signal: a select arm
// that receives a stop and exits, a range over a channel the module
// closes, a join on a Wait()ed sync.WaitGroup — or a reasoned
// //cplint:leak-ok.
package mcn

import (
	"context"
	"sync"
)

// A Queue is the storm-engine shape: a feed channel, a stop channel,
// and a join group.
type Queue struct {
	ch   chan int
	done chan struct{}
	wg   sync.WaitGroup
}

// Start spawns a drainer bounded by Stop's close.
func (q *Queue) Start() {
	go func() {
		for range q.ch {
		}
	}()
}

// Stop closes the feed, ending Start's range.
func (q *Queue) Stop() { close(q.ch) }

// Watch is bounded by the ctx.Done select arm.
func (q *Queue) Watch(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-q.ch:
				_ = v
			}
		}
	}()
}

// Leak spins forever: the select has no arm that exits.
func (q *Queue) Leak() {
	go func() { // want `goroutine loops forever \(line \d+\) with no select arm that receives a stop signal and exits`
		for {
			select {
			case v := <-q.ch:
				_ = v
			}
		}
	}()
}

// RangeLeak ranges a channel no function in the module closes.
func (q *Queue) RangeLeak(in chan int) {
	go func() { // want `goroutine ranges over a channel \(line \d+\) no function in the module closes`
		for range in {
		}
	}()
}

// Joined has no stop signal but joins a Wait()ed WaitGroup: a stuck
// worker deadlocks Joined loudly instead of leaking silently.
func (q *Queue) Joined() {
	q.wg.Add(1)
	go func() {
		defer q.wg.Done()
		for {
			select {
			case v := <-q.ch:
				_ = v
			}
		}
	}()
	q.wg.Wait()
}

// Dynamic targets a func value: termination cannot be proven.
func Dynamic(fn func()) {
	go fn() // want `goroutine target is a dynamic func value: termination cannot be proven`
}

// Declared hands the body to a named method: the graph resolves it and
// finds drain's exit arm.
func (q *Queue) Declared() {
	go q.drain()
}

func (q *Queue) drain() {
	for {
		select {
		case <-q.done:
			return
		case v := <-q.ch:
			_ = v
		}
	}
}

// Forever is deliberately process-lifetime, and says so.
func (q *Queue) Forever() {
	go func() { //cplint:leak-ok fixture: process-lifetime metrics pump, dies with the process
		for {
			select {
			case v := <-q.ch:
				_ = v
			}
		}
	}()
}
