package lint

import "testing"

// Each analyzer runs alone against its fixture package; expectations
// are the // want comments inside the fixtures.

func TestDetMapFixture(t *testing.T) {
	runFixture(t, []*Analyzer{DetMap}, "cptraffic/internal/world")
}

func TestDetSourceFixture(t *testing.T) {
	runFixture(t, []*Analyzer{DetSource}, "cptraffic/internal/stats")
}

func TestExhaustiveFixture(t *testing.T) {
	runFixture(t, []*Analyzer{Exhaustive}, "cptraffic/internal/sm")
}

func TestFloatFoldFixture(t *testing.T) {
	runFixture(t, []*Analyzer{FloatFold}, "cptraffic/internal/ffold")
}

func TestFrozenFixture(t *testing.T) {
	runFixture(t, []*Analyzer{Frozen}, "cptraffic/internal/core")
}

// TestFrozenCrossPackage pins that the frozen family is resolved
// through the import graph: the report fixture mutates core's model
// types from outside core.
func TestFrozenCrossPackage(t *testing.T) {
	runFixture(t, []*Analyzer{Frozen}, "cptraffic/internal/report")
}

// TestFrozenFivegExempt pins the whitelist: the 5G adapter package is
// the sanctioned clone-then-mutate surface.
func TestFrozenFivegExempt(t *testing.T) {
	if diags := runFixture(t, []*Analyzer{Frozen}, "cptraffic/internal/fiveg"); len(diags) != 0 {
		t.Errorf("want no diagnostics in the fiveg whitelist, got %d", len(diags))
	}
}

func TestHotAllocFixture(t *testing.T) {
	runFixture(t, []*Analyzer{HotAlloc}, "cptraffic/internal/hot")
}

func TestParShareFixture(t *testing.T) {
	runFixture(t, []*Analyzer{ParShare}, "cptraffic/internal/eval")
}

// TestRetainFixture covers the retain positive and negative space:
// direct retention, field stores, the interprocedural callback →
// helper → struct-field-store chain, CHA interface dispatch, channel
// sends, goroutine captures — and, annotation-free, the sanctioned
// copy idioms (AppendTo, CopyBatch, append(x[:0:0], x...)).
func TestRetainFixture(t *testing.T) {
	runFixture(t, []*Analyzer{Retain}, "cptraffic/internal/sink")
}

// TestHotCallFixture covers hot-path propagation: an allocation two
// calls below the root is flagged with the chain named, early-exit
// branches and //cplint:coldpath functions stay silent, and the chain
// crosses module-local interface dispatch.
func TestHotCallFixture(t *testing.T) {
	runFixture(t, []*Analyzer{HotCall}, "cptraffic/internal/hotchain")
}

// TestGuardedByFixture covers the lock contract: plain and deferred
// unlocks, early returns, per-iteration locking, RWMutex levels, the
// interprocedural entry-lock summary with the unlocked chain named,
// func literals losing the held set, and the unguarded-ok escape.
func TestGuardedByFixture(t *testing.T) {
	runFixture(t, []*Analyzer{GuardedBy}, "cptraffic/internal/guarded")
}

// TestGoLeakFixture covers goroutine-lifetime proofs: ctx.Done select
// arms, close-bounded ranges, Wait()ed WaitGroup joins, graph-resolved
// named targets, dynamic targets, and the leak-ok escape — in a
// concurrency-gated fixture path.
func TestGoLeakFixture(t *testing.T) {
	runFixture(t, []*Analyzer{GoLeak}, "cptraffic/internal/mcn")
}

// TestCtxFlowFixture covers cancellation propagation: direct
// Background/TODO laundering, With*-derived and variable-carried
// taint, entry-point exemption, literal scope rebinding, and the
// detached-ok escape.
func TestCtxFlowFixture(t *testing.T) {
	runFixture(t, []*Analyzer{CtxFlow}, "cptraffic/internal/ctxflow")
}

// TestTraceStubClean pins the negative space of the reuse contract:
// the reused type's own methods (Reset, Append, AppendTo, CopyBatch)
// write only through the receiver or copy idioms, so the full suite —
// in the determinism-gated internal/trace path — reports nothing.
func TestTraceStubClean(t *testing.T) {
	if diags := runFixture(t, All(), "cptraffic/internal/trace"); len(diags) != 0 {
		t.Errorf("trace stub should be clean, got %d diagnostics", len(diags))
	}
}

// TestNonDetPackageIsExempt runs the whole suite over a package outside
// the determinism-critical list: the order-sensitive map range and the
// time.Now call must not be reported — but floatfold runs module-wide,
// so the float fold is, and nothing else.
func TestNonDetPackageIsExempt(t *testing.T) {
	diags := runFixture(t, All(), "cptraffic/internal/util")
	if len(diags) != 1 {
		t.Errorf("want exactly the module-wide floatfold diagnostic, got %d", len(diags))
	}
	for _, d := range diags {
		if d.Analyzer != "floatfold" {
			t.Errorf("non-floatfold diagnostic outside determinism-critical packages: %s", d)
		}
	}
}

// TestTreeClean pins the invariant `make lint` enforces: the real
// module, loaded fresh (no fixture shadowing), produces zero
// diagnostics under the full suite.
func TestTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	var l Loader
	pkgs, err := l.Load("cptraffic/...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("go list matched no packages")
	}
	for _, d := range Analyze(pkgs, All()) {
		t.Errorf("tree not clean: %s", d)
	}
}
