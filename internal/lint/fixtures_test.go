package lint

import "testing"

// Each analyzer runs alone against its fixture package; expectations
// are the // want comments inside the fixtures.

func TestDetMapFixture(t *testing.T) {
	runFixture(t, []*Analyzer{DetMap}, "cptraffic/internal/core")
}

func TestDetSourceFixture(t *testing.T) {
	runFixture(t, []*Analyzer{DetSource}, "cptraffic/internal/stats")
}

func TestHotAllocFixture(t *testing.T) {
	runFixture(t, []*Analyzer{HotAlloc}, "cptraffic/internal/hot")
}

func TestParShareFixture(t *testing.T) {
	runFixture(t, []*Analyzer{ParShare}, "cptraffic/internal/eval")
}

// TestNonDetPackageIsExempt runs the whole suite over a package outside
// the determinism-critical list: its order-sensitive map range and
// time.Now call must not be reported.
func TestNonDetPackageIsExempt(t *testing.T) {
	if diags := runFixture(t, All(), "cptraffic/internal/util"); len(diags) != 0 {
		t.Errorf("want no diagnostics outside determinism-critical packages, got %d", len(diags))
	}
}

// TestTreeClean pins the invariant `make lint` enforces: the real
// module, loaded fresh (no fixture shadowing), produces zero
// diagnostics under the full suite.
func TestTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	var l Loader
	pkgs, err := l.Load("cptraffic/...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("go list matched no packages")
	}
	for _, d := range Analyze(pkgs, All()) {
		t.Errorf("tree not clean: %s", d)
	}
}
