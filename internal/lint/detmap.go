package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DetMap flags `range` over a map inside the determinism-critical
// packages unless the loop body is provably order-insensitive or the
// site carries a //cplint:ordered-ok <reason> annotation. It also
// flags maps.Keys / maps.Values calls whose result is not immediately
// sorted.
//
// "Provably order-insensitive" is deliberately narrow — exactly the
// shapes the determinism audit in PR 1 and PR 3 established as safe:
//
//   - writes into outer containers indexed by the iteration key
//     (dst[k] = v): each key owns its slot, so order cannot matter;
//   - commutative accumulation into integer or boolean outer state
//     (n++, n += v, bits |= f): exact in any order — while float
//     += / -= / *= is always order-sensitive (summation order changes
//     the last ulp, which changes the saved model bytes);
//   - the collect-then-sort idiom: a body that only appends keys or
//     values to a slice that is sorted by the statement immediately
//     after the loop;
//   - writes to variables declared inside the loop body (fresh per
//     iteration, no cross-iteration state).
//
// Everything else — early return/break, plain assignment to outer
// variables, calls that can observe iteration order — is flagged: fix
// it by iterating sorted keys, or annotate the loop with a reason.
var DetMap = &Analyzer{
	Name: "detmap",
	Doc:  "flags nondeterministic map iteration in determinism-critical packages",
	Run:  runDetMap,
}

func runDetMap(pass *Pass) error {
	gated := inDetPackage(pass.Pkg.Path)
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if !gated {
					// Outside the gated packages the check does not
					// run, but an ordered-ok annotation on a map range
					// is still legitimately attached — claim it so
					// directive hygiene does not call it a mistake.
					if t := pass.Pkg.Info.TypeOf(n.X); t != nil {
						if _, ok := t.Underlying().(*types.Map); ok {
							directiveAt(pass.Pkg, DirOrderedOK, n.For)
						}
					}
					return true
				}
				checkMapRange(pass, f, n)
			case *ast.CallExpr:
				if gated {
					checkMapsKeysCall(pass, f, n)
				}
			}
			return true
		})
	}
	return nil
}

func checkMapRange(pass *Pass, file *ast.File, rs *ast.RangeStmt) {
	t := pass.Pkg.Info.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	if d := directiveAt(pass.Pkg, DirOrderedOK, rs.For); d != nil {
		return // justified by the annotation; reason checked by validateDirectives
	}
	if reason := orderSensitive(pass, file, rs); reason != "" {
		pass.Reportf(rs.For, "range over map %s has nondeterministic iteration order: %s; iterate sorted keys or annotate //cplint:ordered-ok <reason>",
			types.ExprString(rs.X), reason)
	}
}

// orderSensitive returns "" if every effect of the loop body is
// provably order-insensitive, else a description of the first
// order-sensitive construct found.
func orderSensitive(pass *Pass, file *ast.File, rs *ast.RangeStmt) string {
	info := pass.Pkg.Info
	key := rangeVarObj(info, rs.Key)
	val := rangeVarObj(info, rs.Value)

	// An object is loop-local if it is declared inside the range
	// statement (including the key/value vars themselves): writes to
	// loop-locals carry no state across iterations.
	local := func(obj types.Object) bool {
		return obj != nil && rs.Pos() <= obj.Pos() && obj.Pos() < rs.End()
	}
	usesKey := func(e ast.Expr) bool {
		if key == nil {
			return false
		}
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && info.Uses[id] == key {
				found = true
			}
			return !found
		})
		return found
	}

	if ok := collectThenSort(pass, file, rs, key, val); ok {
		return ""
	}

	var verdict string
	flag := func(why string) {
		if verdict == "" {
			verdict = why
		}
	}

	// checkWrite judges one assignment target.
	checkWrite := func(lhs ast.Expr, commutative bool) {
		root, keyed := writeRoot(info, lhs, usesKey)
		switch {
		case root == nil:
			flag("write through " + types.ExprString(lhs) + " cannot be proven order-insensitive")
		case local(root):
			// fresh per iteration
		case keyed:
			// dst[k] = ... — slot owned by this key
		case commutative:
			// n += v and friends, already vetted for integer/bool type
		default:
			flag("assignment to " + root.Name() + " (declared outside the loop) depends on iteration order")
		}
	}

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if verdict != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if isBlank(lhs) {
					continue
				}
				comm := false
				switch n.Tok {
				case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
					token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN, token.AND_NOT_ASSIGN:
					if isExactAccum(info.TypeOf(lhs)) {
						comm = true
					} else {
						flag(types.ExprString(lhs) + " " + n.Tok.String() + " on " + typeName(info.TypeOf(lhs)) + " accumulates in iteration order (float partial sums differ per order)")
						return false
					}
				case token.SHL_ASSIGN, token.SHR_ASSIGN, token.QUO_ASSIGN, token.REM_ASSIGN:
					flag(types.ExprString(lhs) + " " + n.Tok.String() + " is not commutative")
					return false
				}
				_ = i
				checkWrite(lhs, comm)
			}
		case *ast.IncDecStmt:
			if isExactAccum(info.TypeOf(n.X)) {
				checkWrite(n.X, true)
			} else {
				checkWrite(n.X, false)
			}
		case *ast.CallExpr:
			if why := checkLoopCall(info, n, rs, usesKey); why != "" {
				flag(why)
				return false
			}
		case *ast.ReturnStmt:
			flag("return inside the loop selects a map-order-dependent element")
			return false
		case *ast.BranchStmt:
			if n.Tok == token.BREAK || n.Tok == token.GOTO {
				flag(n.Tok.String() + " inside the loop exits after a map-order-dependent prefix")
				return false
			}
		case *ast.SendStmt:
			flag("channel send inside the loop publishes elements in map order")
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				flag("channel receive inside the loop consumes in map order")
				return false
			}
		case *ast.GoStmt, *ast.DeferStmt:
			flag("go/defer inside the loop schedules work in map order")
			return false
		}
		return true
	})
	return verdict
}

// checkLoopCall judges a call inside a map-range body. Builtins that
// cannot observe order are fine; delete is fine when the deleted key
// is the iteration key (per spec, deleting the current entry during
// range is well-defined); any other call could observe or record the
// iteration order, so it is not provable.
func checkLoopCall(info *types.Info, call *ast.CallExpr, rs *ast.RangeStmt, usesKey func(ast.Expr) bool) string {
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return "" // conversion, not a call
	}
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		if b, ok := info.Uses[fn].(*types.Builtin); ok {
			switch b.Name() {
			case "len", "cap", "min", "max", "abs", "real", "imag", "complex", "make", "new":
				return ""
			case "append", "copy", "clear":
				// append's effect is judged by the assignment it feeds
				// (x = append(x, ...)); bare copy/clear into outer
				// state is order-dependent only via its target, which
				// conservatively we do not chase.
				return ""
			case "delete":
				if len(call.Args) == 2 && usesKey(call.Args[1]) {
					return ""
				}
				return "delete with a key not derived from the iteration key mutates the map in iteration order"
			case "panic", "print", "println":
				return "builtin " + b.Name() + " inside the loop observes iteration order"
			default:
				return ""
			}
		}
		if _, ok := info.Uses[fn].(*types.TypeName); ok {
			return "" // conversion
		}
	case *ast.SelectorExpr:
		_ = fn
	default:
		if _, ok := info.Types[call.Fun]; ok && info.Types[call.Fun].IsType() {
			return "" // conversion like pkg.T(x)
		}
	}
	return "call to " + types.ExprString(call.Fun) + " may observe iteration order"
}

// writeRoot unwraps an assignment target to its root object and
// reports whether the access path goes through an index derived from
// the iteration key (dst[k], dst[k].field, s.m[k]...).
func writeRoot(info *types.Info, lhs ast.Expr, usesKey func(ast.Expr) bool) (types.Object, bool) {
	keyed := false
	for {
		switch e := lhs.(type) {
		case *ast.Ident:
			if obj, ok := info.Uses[e]; ok {
				return obj, keyed
			}
			if obj, ok := info.Defs[e]; ok {
				return obj, keyed
			}
			return nil, keyed
		case *ast.IndexExpr:
			if usesKey(e.Index) {
				keyed = true
			}
			lhs = e.X
		case *ast.SelectorExpr:
			lhs = e.X
		case *ast.StarExpr:
			lhs = e.X
		case *ast.ParenExpr:
			lhs = e.X
		default:
			return nil, keyed
		}
	}
}

// collectThenSort recognizes the canonical sort-the-keys prelude:
//
//	for k := range m { keys = append(keys, k) }
//	sort.Slice/sort.Strings/slices.Sort...(keys...)
//
// The append itself is order-sensitive, but the immediately following
// sort canonicalizes the slice before anything can observe it.
func collectThenSort(pass *Pass, file *ast.File, rs *ast.RangeStmt, key, val types.Object) bool {
	info := pass.Pkg.Info
	if len(rs.Body.List) != 1 {
		return false
	}
	as, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || as.Tok != token.ASSIGN && as.Tok != token.DEFINE || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	if b, ok := info.Uses[fn].(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	dst, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	dstObj := info.Uses[dst]
	if dstObj == nil {
		dstObj = info.Defs[dst]
	}
	if dstObj == nil {
		return false
	}
	// The statement right after the range must sort dst.
	next := stmtAfter(file, rs)
	es, ok := next.(*ast.ExprStmt)
	if !ok {
		return false
	}
	sortCall, ok := es.X.(*ast.CallExpr)
	if !ok || !isSortFunc(info, sortCall.Fun) || len(sortCall.Args) == 0 {
		return false
	}
	arg, ok := sortCall.Args[0].(*ast.Ident)
	return ok && info.Uses[arg] == dstObj
}

// stmtAfter returns the statement that lexically follows stmt in its
// enclosing block, or nil.
func stmtAfter(file *ast.File, stmt ast.Stmt) ast.Stmt {
	var found ast.Stmt
	ast.Inspect(file, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		for i, s := range block.List {
			if s == stmt && i+1 < len(block.List) {
				found = block.List[i+1]
				return false
			}
		}
		return true
	})
	return found
}

func isSortFunc(info *types.Info, fun ast.Expr) bool {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() {
	case "sort":
		switch obj.Name() {
		case "Ints", "Strings", "Float64s", "Slice", "SliceStable", "Sort", "Stable":
			return true
		}
	case "slices", "golang.org/x/exp/slices":
		switch obj.Name() {
		case "Sort", "SortFunc", "SortStableFunc":
			return true
		}
	}
	return false
}

// checkMapsKeysCall flags maps.Keys / maps.Values unless the call is
// the direct argument of slices.Sorted / slices.SortedFunc /
// slices.SortedStableFunc (the only wrapping that canonicalizes the
// order before anything can observe it).
func checkMapsKeysCall(pass *Pass, file *ast.File, call *ast.CallExpr) {
	info := pass.Pkg.Info
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil {
		return
	}
	path := obj.Pkg().Path()
	if path != "maps" && path != "golang.org/x/exp/maps" {
		return
	}
	if obj.Name() != "Keys" && obj.Name() != "Values" {
		return
	}
	if sortedWraps(info, file, call) {
		return
	}
	pass.Reportf(call.Pos(), "maps.%s yields elements in nondeterministic order; wrap in slices.Sorted(...) or iterate sorted keys", obj.Name())
}

// sortedWraps reports whether call appears as the direct argument of a
// slices.Sorted* call.
func sortedWraps(info *types.Info, file *ast.File, call *ast.CallExpr) bool {
	ok := false
	ast.Inspect(file, func(n ast.Node) bool {
		outer, isCall := n.(*ast.CallExpr)
		if !isCall {
			return true
		}
		sel, isSel := outer.Fun.(*ast.SelectorExpr)
		if !isSel {
			return true
		}
		fo, isFn := info.Uses[sel.Sel].(*types.Func)
		if !isFn || fo.Pkg() == nil {
			return true
		}
		if fo.Pkg().Path() != "slices" && fo.Pkg().Path() != "golang.org/x/exp/slices" {
			return true
		}
		switch fo.Name() {
		case "Sorted", "SortedFunc", "SortedStableFunc", "Collect":
			// slices.Collect is only safe if itself sorted; treat only
			// Sorted* as safe.
			if fo.Name() == "Collect" {
				return true
			}
			if len(outer.Args) > 0 && outer.Args[0] == call {
				ok = true
				return false
			}
		}
		return true
	})
	return ok
}

func rangeVarObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj, ok := info.Defs[id]; ok && obj != nil {
		return obj
	}
	return info.Uses[id]
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// isExactAccum reports whether accumulating into t is exact in any
// order: integers (wraparound + and * are fully commutative and
// associative) and booleans. Floats and strings are not.
func isExactAccum(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&(types.IsInteger|types.IsBoolean) != 0
}

func typeName(t types.Type) string {
	if t == nil {
		return "<unknown>"
	}
	return t.String()
}
