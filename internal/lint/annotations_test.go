package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// Directive-comment lines cannot also carry // want comments (a line
// comment runs to end of line), so annotation hygiene is asserted
// explicitly here instead of through the fixture harness.

func parseSrc(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return fset, []*ast.File{f}
}

func TestParseDirectives(t *testing.T) {
	fset, files := parseSrc(t, `package p

//cplint:ordered-ok keys are written into disjoint slots
var a int

//cplint:hotpath
var b int

//cplint:ordered-ok
var c int

// a plain comment, not a directive
var d int
`)
	dirs := parseDirectives(fset, files)
	if len(dirs) != 3 {
		t.Fatalf("got %d directives, want 3", len(dirs))
	}
	want := []struct {
		name, reason string
		line         int
	}{
		{"ordered-ok", "keys are written into disjoint slots", 3},
		{"hotpath", "", 6},
		{"ordered-ok", "", 9},
	}
	for i, w := range want {
		d := dirs[i]
		if d.Name != w.name || d.Reason != w.reason || d.Line != w.line {
			t.Errorf("directive %d: got {%q %q line %d}, want {%q %q line %d}",
				i, d.Name, d.Reason, d.Line, w.name, w.reason, w.line)
		}
	}
}

// TestDirectiveHygiene runs the full suite over the hygiene fixture:
// every malformed or misplaced annotation must produce exactly one
// diagnostic, and nothing else.
func TestDirectiveHygiene(t *testing.T) {
	l := fixtureLoader(t)
	pkgs, err := l.LoadPaths("cptraffic/internal/cluster")
	if err != nil {
		t.Fatalf("loading hygiene fixture: %v", err)
	}
	diags := Analyze(pkgs, All())

	want := []struct {
		line int
		sub  string
	}{
		{9, "//cplint:ordered-ok needs a reason"},
		{19, "not attached to a range-over-map statement"},
		{26, "not attached to a function declaration"},
		{31, "unknown directive //cplint:frobnicate"},
		{12, "//cplint:partial-ok needs a reason"},
		{20, "not attached to a partially-covered enum switch, an order-sensitive float fold, or a frozen-model write"},
	}
	if len(diags) != len(want) {
		for _, d := range diags {
			t.Logf("got: %s", d)
		}
		t.Fatalf("got %d diagnostics, want %d", len(diags), len(want))
	}
	for i, w := range want {
		d := diags[i]
		if d.Pos.Line != w.line || !strings.Contains(d.Message, w.sub) {
			t.Errorf("diagnostic %d: got line %d %q, want line %d containing %q",
				i, d.Pos.Line, d.Message, w.line, w.sub)
		}
	}
}

// TestRetainDirectiveHygiene runs the full suite over the retain
// negative-control fixture (outside the determinism-gated set): the
// reasonless retained-ok, the unattached retained-ok, and the reused
// marker on a non-type each produce exactly one diagnostic, and the
// annotated escape itself stays suppressed.
func TestRetainDirectiveHygiene(t *testing.T) {
	l := fixtureLoader(t)
	pkgs, err := l.LoadPaths("cptraffic/internal/retainneg")
	if err != nil {
		t.Fatalf("loading retain hygiene fixture: %v", err)
	}
	diags := Analyze(pkgs, All())

	want := []struct {
		line int
		sub  string
	}{
		{17, "//cplint:retained-ok needs a reason"},
		{21, "not attached to a statement that retains a reused buffer"},
		{27, "not attached to a type declaration"},
	}
	if len(diags) != len(want) {
		for _, d := range diags {
			t.Logf("got: %s", d)
		}
		t.Fatalf("got %d diagnostics, want %d", len(diags), len(want))
	}
	for i, w := range want {
		d := diags[i]
		if d.Pos.Line != w.line || !strings.Contains(d.Message, w.sub) {
			t.Errorf("diagnostic %d: got line %d %q, want line %d containing %q",
				i, d.Pos.Line, d.Message, w.line, w.sub)
		}
	}
	for _, d := range diags {
		if strings.Contains(d.Message, "reused buffer escapes") {
			t.Errorf("attached retained-ok failed to suppress the escape: %s", d)
		}
	}
}

// TestConcurrencyDirectiveHygiene runs the full suite over the
// concurrency negative-control fixture: the reasonless guardedby, the
// guardedby naming a non-mutex sibling, and the three unattached
// suppressions each produce exactly one diagnostic — and the leaky
// goroutine at the bottom of the fixture produces none, because the
// package path is outside the concurrency gate.
func TestConcurrencyDirectiveHygiene(t *testing.T) {
	l := fixtureLoader(t)
	pkgs, err := l.LoadPaths("cptraffic/internal/concneg")
	if err != nil {
		t.Fatalf("loading concurrency hygiene fixture: %v", err)
	}
	diags := Analyze(pkgs, All())

	want := []struct {
		line int
		sub  string
	}{
		{13, "//cplint:guardedby needs the guarding mutex field name"},
		{14, `names "lock", which is not a sync.Mutex or sync.RWMutex field of Bad`},
		{18, "not attached to a lock-free access of a guarded field"},
		{21, "not attached to a go statement"},
		{24, "not attached to a detached-context argument"},
	}
	if len(diags) != len(want) {
		for _, d := range diags {
			t.Logf("got: %s", d)
		}
		t.Fatalf("got %d diagnostics, want %d", len(diags), len(want))
	}
	for i, w := range want {
		d := diags[i]
		if d.Pos.Line != w.line || !strings.Contains(d.Message, w.sub) {
			t.Errorf("diagnostic %d: got line %d %q, want line %d containing %q",
				i, d.Pos.Line, d.Message, w.line, w.sub)
		}
	}
	for _, d := range diags {
		if strings.Contains(d.Message, "goroutine") {
			t.Errorf("goleak fired outside the concurrency gate: %s", d)
		}
	}
}

// TestMalformedDirectiveStillSuppresses documents the failure mode of a
// reasonless ordered-ok: the annotated loop itself is not re-reported
// (the annotation is attached), but the missing reason is an error, so
// the build still fails until a justification is written.
func TestMalformedDirectiveStillSuppresses(t *testing.T) {
	l := fixtureLoader(t)
	pkgs, err := l.LoadPaths("cptraffic/internal/cluster")
	if err != nil {
		t.Fatalf("loading hygiene fixture: %v", err)
	}
	for _, d := range Analyze(pkgs, []*Analyzer{DetMap}) {
		if strings.Contains(d.Message, "nondeterministic iteration order") {
			t.Errorf("annotated loop was re-reported: %s", d)
		}
	}
}
