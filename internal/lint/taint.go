package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// The taint walker is the dataflow half of the call-graph substrate: a
// flow-insensitive, bitmask-based escape analysis over one function
// body. Each pointerful parameter (receiver first) owns one bit; local
// variables accumulate the bits of whatever they may alias; sinks that
// outlive the frame (package variables, captured variables, fields of
// escaping objects, channel sends, goroutine captures, calls whose
// summary retains the argument) record an escape of the accumulated
// bits.
//
// The same walker serves two modes. In summary mode (report == nil)
// escapes land in a retSummary consumed at call sites — that is what
// makes the analysis interprocedural. In frame mode (report != nil)
// escapes of reused-parameter bits become retain diagnostics.
//
// The walk runs the body to a local mask fixpoint first (masks only
// grow), then one recording pass; every expression is evaluated
// exactly once per pass, so escapes are recorded exactly once.

// An escapeEvent is one recorded escape.
type escapeEvent struct {
	pos  token.Pos
	expr ast.Expr // the escaping value expression when syntactically evident (autofix input)
	mask uint64
	desc string // "assigned to package variable saved", "sent on a channel", ...
}

type taint struct {
	g     *Graph
	pkg   *Package
	frame ast.Node // *ast.FuncDecl or *ast.FuncLit
	body  *ast.BlockStmt

	params  []*types.Var
	bits    map[types.Object]uint64 // parameter object -> its bit
	bitIdx  map[types.Object]int
	allBits uint64

	masks   map[types.Object]uint64
	changed bool

	record bool
	sum    retSummary
	report func(escapeEvent)
}

func newTaint(g *Graph, pkg *Package, frame ast.Node, body *ast.BlockStmt, sig *types.Signature) *taint {
	t := &taint{
		g:      g,
		pkg:    pkg,
		frame:  frame,
		body:   body,
		params: paramVars(sig),
		bits:   make(map[types.Object]uint64),
		bitIdx: make(map[types.Object]int),
		masks:  make(map[types.Object]uint64),
		sum:    retSummary{into: make(map[int]uint64), note: make(map[int]string)},
	}
	for i, p := range t.params {
		if i >= 64 || !pointerful(p.Type()) {
			continue
		}
		bit := uint64(1) << uint(i)
		t.bits[p] = bit
		t.bitIdx[p] = i
		t.allBits |= bit
		t.masks[p] = bit
	}
	return t
}

// run drives the two passes: mask fixpoint, then the recording pass.
func (t *taint) run() {
	for i := 0; i < 64; i++ {
		t.changed = false
		t.walkStmt(t.body)
		if !t.changed {
			break
		}
	}
	t.record = true
	t.walkStmt(t.body)
}

func (t *taint) setMask(obj types.Object, m uint64) {
	if obj == nil || m == 0 {
		return
	}
	old := t.masks[obj]
	if old|m != old {
		t.masks[obj] = old | m
		t.changed = true
	}
}

func (t *taint) obj(id *ast.Ident) types.Object {
	if o := t.pkg.Info.Uses[id]; o != nil {
		return o
	}
	return t.pkg.Info.Defs[id]
}

func (t *taint) typeOf(e ast.Expr) types.Type {
	return t.pkg.Info.TypeOf(e)
}

// frameLocal reports whether obj is declared inside the frame (its
// lifetime ends when the frame returns, unless it escapes separately).
func (t *taint) frameLocal(obj types.Object) bool {
	return obj.Pos() >= t.frame.Pos() && obj.Pos() < t.frame.End()
}

// escapeRec records one escape in the active mode.
func (t *taint) escapeRec(pos token.Pos, expr ast.Expr, mask uint64, desc string) {
	if !t.record || mask == 0 {
		return
	}
	if t.report != nil {
		t.report(escapeEvent{pos: pos, expr: expr, mask: mask, desc: desc})
		return
	}
	pb := mask & t.allBits
	if pb == 0 {
		return
	}
	t.sum.escapes |= pb
	for i := 0; i < 64 && i < len(t.params); i++ {
		if pb&(1<<uint(i)) != 0 {
			if _, ok := t.sum.note[i]; !ok {
				t.sum.note[i] = desc
			}
		}
	}
}

// storeInto handles "value with mask m is stored into the object
// container points to": stores into parameter-pointed objects surface
// in the summary (the caller judges them), stores into frame-local
// containers taint the container, everything else escapes.
func (t *taint) storeInto(container ast.Expr, m uint64, pos token.Pos, rhs ast.Expr, what string) {
	if m == 0 {
		return
	}
	if root := retainRoot(container); root != nil {
		if obj := t.obj(root); obj != nil {
			if j, ok := t.bitIdx[obj]; ok {
				if t.record && t.report == nil {
					t.sum.into[j] |= m & t.allBits
				}
				return
			}
			if t.frameLocal(obj) {
				t.setMask(obj, m)
				return
			}
		}
	}
	t.escapeRec(pos, rhs, m, what)
}

// retainRoot unwraps selector/index/star/paren/slice chains to the
// base identifier, or nil when the base is not an identifier.
func retainRoot(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.SliceExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.UnaryExpr:
			if v.Op != token.AND {
				return nil
			}
			e = v.X
		default:
			return nil
		}
	}
}

// describeVal names the escaping value for diagnostics.
func describeVal(e ast.Expr) string {
	if e == nil {
		return "a reused-buffer value"
	}
	return types.ExprString(e)
}

// ---- statements ----

func (t *taint) walkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		if s == nil {
			return
		}
		for _, c := range s.List {
			t.walkStmt(c)
		}
	case *ast.ExprStmt:
		t.exprMask(s.X)
	case *ast.AssignStmt:
		t.walkAssign(s)
	case *ast.DeclStmt:
		t.walkDecl(s)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			m := t.exprMask(r)
			if t.record && t.report == nil {
				t.sum.toRet |= m & t.allBits
			}
		}
	case *ast.SendStmt:
		t.exprMask(s.Chan)
		m := t.exprMask(s.Value)
		t.escapeRec(s.Arrow, s.Value, m,
			fmt.Sprintf("%s is sent on a channel", describeVal(s.Value)))
	case *ast.GoStmt:
		t.walkGo(s)
	case *ast.DeferStmt:
		// Deferred calls run before the frame returns: judged like a
		// plain call.
		t.exprMask(s.Call)
	case *ast.IfStmt:
		t.walkStmt(s.Init)
		t.exprMask(s.Cond)
		t.walkStmt(s.Body)
		t.walkStmt(s.Else)
	case *ast.ForStmt:
		t.walkStmt(s.Init)
		if s.Cond != nil {
			t.exprMask(s.Cond)
		}
		t.walkStmt(s.Post)
		t.walkStmt(s.Body)
	case *ast.RangeStmt:
		t.walkRange(s)
	case *ast.SwitchStmt:
		t.walkStmt(s.Init)
		if s.Tag != nil {
			t.exprMask(s.Tag)
		}
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			for _, e := range cc.List {
				t.exprMask(e)
			}
			for _, b := range cc.Body {
				t.walkStmt(b)
			}
		}
	case *ast.TypeSwitchStmt:
		t.walkTypeSwitch(s)
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			t.walkStmt(cc.Comm)
			for _, b := range cc.Body {
				t.walkStmt(b)
			}
		}
	case *ast.LabeledStmt:
		t.walkStmt(s.Stmt)
	case *ast.IncDecStmt:
		t.exprMask(s.X)
	case *ast.BranchStmt, *ast.EmptyStmt:
	}
}

func (t *taint) walkAssign(s *ast.AssignStmt) {
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		// Tuple assignment: one multi-valued rhs. The per-result split
		// is not tracked; every lhs gets the joined mask.
		m := t.exprMask(s.Rhs[0])
		for _, l := range s.Lhs {
			t.assignTo(l, m, s.Rhs[0], s.TokPos)
		}
		return
	}
	for i, l := range s.Lhs {
		if i >= len(s.Rhs) {
			break
		}
		m := t.exprMask(s.Rhs[i])
		t.assignTo(l, m, s.Rhs[i], s.TokPos)
	}
}

func (t *taint) walkDecl(s *ast.DeclStmt) {
	gd, ok := s.Decl.(*ast.GenDecl)
	if !ok || gd.Tok != token.VAR {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for i, id := range vs.Names {
			if i < len(vs.Values) {
				m := t.exprMask(vs.Values[i])
				t.assignTo(id, m, vs.Values[i], id.Pos())
			}
		}
	}
}

func (t *taint) walkRange(s *ast.RangeStmt) {
	mx := t.exprMask(s.X)
	if s.Value != nil {
		em := uint64(0)
		if pointerful(elemType(t.typeOf(s.X))) {
			em = mx
		}
		t.assignTo(s.Value, em, s.X, s.Range)
	}
	// Keys are indexes or map keys; map keys are comparable and very
	// rarely alias reused buffers — untracked.
	t.walkStmt(s.Body)
}

func (t *taint) walkTypeSwitch(s *ast.TypeSwitchStmt) {
	t.walkStmt(s.Init)
	var mx uint64
	switch a := s.Assign.(type) {
	case *ast.AssignStmt:
		if ta, ok := a.Rhs[0].(*ast.TypeAssertExpr); ok {
			mx = t.exprMask(ta.X)
		}
	case *ast.ExprStmt:
		if ta, ok := a.X.(*ast.TypeAssertExpr); ok {
			mx = t.exprMask(ta.X)
		}
	}
	for _, c := range s.Body.List {
		cc := c.(*ast.CaseClause)
		if obj := t.pkg.Info.Implicits[cc]; obj != nil {
			t.setMask(obj, mx)
		}
		for _, b := range cc.Body {
			t.walkStmt(b)
		}
	}
}

func (t *taint) walkGo(s *ast.GoStmt) {
	call := s.Call
	m := t.funOperandMask(call)
	for _, a := range call.Args {
		m |= t.exprMask(a)
	}
	t.escapeRec(s.Go, nil, m,
		fmt.Sprintf("a reused-buffer value is captured by goroutine go %s", types.ExprString(call.Fun)))
}

// funOperandMask evaluates the callee operand of a call for its own
// mask (func literals capturing tracked variables, method values on
// tracked receivers).
func (t *taint) funOperandMask(call *ast.CallExpr) uint64 {
	switch fun := unparenExpr(call.Fun).(type) {
	case *ast.FuncLit:
		return t.exprMask(fun)
	case *ast.SelectorExpr:
		if sel, ok := t.pkg.Info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			return 0 // receiver handled by callMask's argument alignment
		}
	}
	return 0
}

// assignTo applies "lhs = value with mask m".
func (t *taint) assignTo(lhs ast.Expr, m uint64, rhs ast.Expr, pos token.Pos) {
	switch l := unparenExpr(lhs).(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return
		}
		obj := t.obj(l)
		if obj == nil || m == 0 {
			return
		}
		if t.frameLocal(obj) {
			t.setMask(obj, m)
			return
		}
		t.escapeRec(pos, rhs, m,
			fmt.Sprintf("%s is assigned to %s, which outlives this function", describeVal(rhs), t.scopeName(obj)))
	case *ast.SelectorExpr:
		mx := t.exprMask(l.X)
		if rem := m &^ mx; rem != 0 {
			// Storing a value back into the object it came from does not
			// extend its lifetime (mx subtraction); everything else is a
			// real store.
			t.storeInto(l.X, rem, pos, rhs,
				fmt.Sprintf("%s is stored into field %s, which outlives this function", describeVal(rhs), types.ExprString(l)))
		}
	case *ast.IndexExpr:
		t.exprMask(l.Index)
		mx := t.exprMask(l.X)
		if rem := m &^ mx; rem != 0 {
			t.storeInto(l.X, rem, pos, rhs,
				fmt.Sprintf("%s is stored into %s, which outlives this function", describeVal(rhs), types.ExprString(l.X)))
		}
	case *ast.StarExpr:
		mx := t.exprMask(l.X)
		if rem := m &^ mx; rem != 0 {
			t.storeInto(l.X, rem, pos, rhs,
				fmt.Sprintf("%s is stored through %s, which outlives this function", describeVal(rhs), types.ExprString(lhs)))
		}
	}
}

func (t *taint) scopeName(obj types.Object) string {
	if t.pkg.Types != nil && obj.Parent() == t.pkg.Types.Scope() {
		return "package variable " + obj.Name()
	}
	return obj.Name() + ", declared outside this frame"
}

// ---- expressions ----

// exprMask computes the alias mask of an expression, recording escapes
// at call boundaries in the recording pass. Every syntactic expression
// is evaluated exactly once per pass.
func (t *taint) exprMask(e ast.Expr) uint64 {
	m := t.rawMask(e)
	if m != 0 && !pointerful(t.typeOf(e)) {
		// Scalar results (column loads b.T[i], lengths, times) carry no
		// aliases no matter what they were derived from.
		return 0
	}
	return m
}

func (t *taint) rawMask(e ast.Expr) uint64 {
	switch e := e.(type) {
	case nil:
		return 0
	case *ast.Ident:
		obj := t.obj(e)
		if obj == nil {
			return 0
		}
		return t.masks[obj]
	case *ast.ParenExpr:
		return t.rawMask(e.X)
	case *ast.BasicLit:
		return 0
	case *ast.SelectorExpr:
		if _, ok := t.pkg.Info.Selections[e]; ok {
			return t.exprMask(e.X)
		}
		// Qualified identifier pkg.X.
		if obj := t.pkg.Info.Uses[e.Sel]; obj != nil {
			return t.masks[obj]
		}
		return 0
	case *ast.IndexExpr:
		t.exprMask(e.Index)
		return t.exprMask(e.X)
	case *ast.SliceExpr:
		for _, idx := range []ast.Expr{e.Low, e.High, e.Max} {
			if idx != nil {
				t.exprMask(idx)
			}
		}
		if isZeroCapReslice(e) {
			// x[:0:0] shares no elements with x: the canonical fresh-copy
			// base for append(x[:0:0], x...).
			return 0
		}
		return t.exprMask(e.X)
	case *ast.StarExpr:
		return t.exprMask(e.X)
	case *ast.UnaryExpr:
		m := t.exprMask(e.X)
		switch e.Op {
		case token.AND, token.ARROW:
			return m
		}
		return 0
	case *ast.BinaryExpr:
		t.exprMask(e.X)
		t.exprMask(e.Y)
		return 0
	case *ast.CompositeLit:
		var m uint64
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				m |= t.exprMask(kv.Value)
				continue
			}
			m |= t.exprMask(el)
		}
		return m
	case *ast.TypeAssertExpr:
		return t.exprMask(e.X)
	case *ast.FuncLit:
		// The literal's body runs (now or later) with access to whatever
		// it captures; walk it for propagation/records, then alias the
		// closure value with its captured masks.
		t.walkStmt(e.Body)
		return t.captureMask(e)
	case *ast.CallExpr:
		return t.callMask(e)
	}
	return 0
}

// captureMask ORs the masks of variables the literal captures from
// outside itself.
func (t *taint) captureMask(lit *ast.FuncLit) uint64 {
	var m uint64
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := t.pkg.Info.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		if obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
			return true
		}
		m |= t.masks[obj]
		return true
	})
	return m
}

func isZeroCapReslice(e *ast.SliceExpr) bool {
	if !e.Slice3 || e.High == nil || e.Max == nil {
		return false
	}
	return isZeroLit(e.High) && isZeroLit(e.Max)
}

func isZeroLit(e ast.Expr) bool {
	bl, ok := unparenExpr(e).(*ast.BasicLit)
	return ok && bl.Value == "0"
}

// callMask evaluates a call: conversions pass the operand through,
// builtins get bespoke rules (append in particular), resolved callees
// apply their summaries (escapes, returns, stores-into-parameters),
// unknown callees are assumed non-retaining — the reuse contract's
// boundary (func-value callbacks) is exactly such a call.
func (t *taint) callMask(call *ast.CallExpr) uint64 {
	info := t.pkg.Info
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		var m uint64
		for _, a := range call.Args {
			m |= t.exprMask(a)
		}
		return m
	}
	if id, ok := unparenExpr(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			return t.builtinMask(b.Name(), call)
		}
	}

	rc := t.g.resolve(t.pkg, call)
	t.funOperandMask(call)

	args := call.Args
	if rc.recv != nil {
		args = append([]ast.Expr{rc.recv}, args...)
	} else if sel, ok := unparenExpr(call.Fun).(*ast.SelectorExpr); ok {
		// Unresolved method call: still evaluate the receiver once.
		if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			args = append([]ast.Expr{sel.X}, args...)
		}
	}
	argMasks := make([]uint64, len(args))
	for i, a := range args {
		argMasks[i] = t.exprMask(a)
	}
	if len(rc.callees) == 0 {
		return 0
	}

	var ret uint64
	escaped := make(map[int]bool)
	for _, c := range rc.callees {
		sig, _ := c.Obj.Type().(*types.Signature)
		if sig == nil {
			continue
		}
		ps := paramVars(sig)
		if len(ps) == 0 {
			continue
		}
		for i, m := range argMasks {
			if m == 0 {
				continue
			}
			j := i
			if j >= len(ps) {
				j = len(ps) - 1 // variadic spill
			}
			if j >= 64 {
				continue
			}
			bit := uint64(1) << uint(j)
			if c.sum.toRet&bit != 0 {
				ret |= m
			}
			if c.sum.escapes&bit != 0 && !escaped[i] && !t.g.isReusedType(ps[j].Type()) {
				// Passing a reused value to a reused-typed parameter is
				// handing the contract down, not an escape: the callee is
				// its own frame and is judged there.
				escaped[i] = true
				note := c.sum.note[j]
				if note != "" {
					note = ": " + note
				}
				t.escapeRec(call.Pos(), args[i], m,
					fmt.Sprintf("%s is passed to %s, which retains it%s", describeVal(args[i]), c.displayName(), note))
			}
		}
		// Stores into parameter-pointed objects: replay them on the
		// actual arguments.
		dsts := make([]int, 0, len(c.sum.into))
		for d := range c.sum.into {
			dsts = append(dsts, d)
		}
		sort.Ints(dsts)
		for _, d := range dsts {
			srcBits := c.sum.into[d]
			var contrib uint64
			for i, m := range argMasks {
				j := i
				if j >= len(ps) {
					j = len(ps) - 1
				}
				if j < 64 && srcBits&(uint64(1)<<uint(j)) != 0 {
					contrib |= m
				}
			}
			if contrib == 0 || d >= len(args) {
				continue
			}
			t.storeInto(args[d], contrib, call.Pos(), nil,
				fmt.Sprintf("a reused-buffer value is passed to %s, which stores it into %s, and that object outlives this function",
					c.displayName(), types.ExprString(args[d])))
		}
	}
	return ret
}

// builtinMask applies the builtin-specific aliasing rules.
func (t *taint) builtinMask(name string, call *ast.CallExpr) uint64 {
	switch name {
	case "append":
		if len(call.Args) == 0 {
			return 0
		}
		m := t.exprMask(call.Args[0])
		if call.Ellipsis.IsValid() {
			// append(dst, src...) copies src's elements; aliases travel
			// only when the elements themselves are pointerful.
			if len(call.Args) == 2 {
				sm := t.exprMask(call.Args[1])
				if pointerful(elemType(t.typeOf(call.Args[1]))) {
					m |= sm
				}
			}
			return m
		}
		for _, a := range call.Args[1:] {
			am := t.exprMask(a)
			if pointerful(t.typeOf(a)) {
				m |= am
			}
		}
		return m
	case "copy":
		if len(call.Args) == 2 {
			t.exprMask(call.Args[0])
			sm := t.exprMask(call.Args[1])
			if sm != 0 && pointerful(elemType(t.typeOf(call.Args[1]))) {
				// Element-wise copy of pointerful elements: the
				// destination's container now holds the aliases.
				t.storeInto(call.Args[0], sm, call.Pos(), call.Args[1],
					fmt.Sprintf("%s's elements are copied into %s, which outlives this function",
						types.ExprString(call.Args[1]), types.ExprString(call.Args[0])))
			}
		}
		return 0
	default:
		for _, a := range call.Args {
			t.exprMask(a)
		}
		return 0
	}
}
