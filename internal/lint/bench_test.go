package lint

import (
	"path/filepath"
	"testing"
)

// BenchmarkLintAnalyze records the analysis cost in the bench ledger:
// each analyzer alone over the fixture tree (the call-graph-backed
// four — retain, hotcall, guardedby, goleak — pay for the substrate,
// rebuilt per run), the twelve-analyzer suite over the same tree, and
// the suite over the real module — so a
// structural regression in the interprocedural substrate (fixpoint
// blowup, CHA over a huge candidate set) shows up in BENCH_<date>.json
// next to generation throughput. Type-checking is setup, not measured:
// the ledger quantity is analysis, the one cost this PR grew.
func BenchmarkLintAnalyze(b *testing.B) {
	l := &Loader{}
	if err := l.AddFixtureTree(filepath.Join("testdata", "src")); err != nil {
		b.Fatal(err)
	}
	pkgs, err := l.LoadPaths(allFixturePaths...)
	if err != nil {
		b.Fatal(err)
	}
	for _, a := range All() {
		b.Run(a.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				AnalyzeWorkers(pkgs, []*Analyzer{a}, 0)
			}
		})
	}
	b.Run("suite", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			AnalyzeWorkers(pkgs, All(), 0)
		}
	})
	b.Run("tree", func(b *testing.B) {
		var tl Loader
		tpkgs, err := tl.Load("cptraffic/...")
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			AnalyzeWorkers(tpkgs, All(), 0)
		}
	})
}
