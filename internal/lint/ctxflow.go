package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// CtxFlow keeps cancellation flowing: inside a function that takes a
// named context.Context parameter, passing a detached context —
// context.Background(), context.TODO(), or anything derived from one
// via context.With* — to a context-accepting callee breaks the
// cancellation chain and is flagged. The fix is to pass the in-scope
// context (or a context.With* derivative of it); a deliberate detach
// (fire-and-forget audit write, shutdown-path cleanup) takes a
// reasoned //cplint:detached-ok on the argument. Entry points —
// functions with no context parameter, such as main and tests — are
// where Background() belongs and are exempt. When the offending
// argument is a literal context.Background()/TODO() call the
// diagnostic carries a suggested fix substituting the in-scope
// parameter.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "flags context.Background()/TODO() laundering below an entry point: pass the in-scope context so cancellation propagates",
	Run:  runCtxFlow,
}

func runCtxFlow(pass *Pass) error {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c := &ctxChecker{pass: pass, info: pass.Pkg.Info, laundered: make(map[types.Object]bool)}
			c.taint(fd.Body)
			c.flag(fd.Body, ctxParamName(pass.Pkg.Info, fd.Type))
		}
	}
	return nil
}

type ctxChecker struct {
	pass      *Pass
	info      *types.Info
	laundered map[types.Object]bool // Context vars assigned from a detached source
}

// taint grows the laundered-variable set to a fixpoint over the
// function's assignments (nested literals included — they share the
// frame's variables).
func (c *ctxChecker) taint(body *ast.BlockStmt) {
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				o := c.info.Defs[id]
				if o == nil {
					o = c.info.Uses[id]
				}
				if o == nil || !isCtxType(o.Type()) || c.laundered[o] {
					continue
				}
				var rhs ast.Expr
				switch {
				case len(as.Rhs) == len(as.Lhs):
					rhs = as.Rhs[i]
				case len(as.Rhs) == 1:
					// ctx, cancel := context.WithCancel(...): one
					// multi-value rhs feeds every lhs.
					rhs = as.Rhs[0]
				}
				if rhs != nil && c.launderedExpr(rhs) {
					c.laundered[o] = true
					changed = true
				}
			}
			return true
		})
	}
}

// launderedExpr reports whether an expression yields a detached
// context: a Background()/TODO() call, a laundered variable, or a
// context.With* of either.
func (c *ctxChecker) launderedExpr(e ast.Expr) bool {
	switch e := unparenExpr(e).(type) {
	case *ast.Ident:
		o := c.info.Uses[e]
		if o == nil {
			o = c.info.Defs[e]
		}
		return o != nil && c.laundered[o]
	case *ast.CallExpr:
		switch name := ctxPkgFunc(c.info, e); {
		case name == "Background" || name == "TODO":
			return true
		case strings.HasPrefix(name, "With") && len(e.Args) > 0:
			return c.launderedExpr(e.Args[0])
		}
	}
	return false
}

// flag walks the body reporting laundered arguments in context.Context
// parameter positions, tracking the innermost named context parameter
// (a nested literal with its own context parameter rebinds scope).
func (c *ctxChecker) flag(body *ast.BlockStmt, ctxName string) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			inner := ctxParamName(c.info, n.Type)
			if inner == "" {
				inner = ctxName
			}
			c.flag(n.Body, inner)
			return false
		case *ast.CallExpr:
			c.checkCall(n, ctxName)
		}
		return true
	})
}

func (c *ctxChecker) checkCall(call *ast.CallExpr, ctxName string) {
	if ctxName == "" {
		return // entry point: Background()/TODO() belong here
	}
	if ctxPkgFunc(c.info, call) != "" {
		return // constructing a derived context is not a sink; its uses are
	}
	sig, _ := c.info.TypeOf(call.Fun).(*types.Signature)
	if sig == nil {
		return
	}
	for i, arg := range call.Args {
		if !isCtxType(paramTypeAt(sig, i)) || !c.launderedExpr(arg) {
			continue
		}
		if directiveAt(c.pass.Pkg, DirDetachedOK, arg.Pos()) != nil {
			continue
		}
		callee := calleeName(call)
		if lit := literalDetached(c.info, arg); lit != "" {
			fix := SuggestedFix{
				Message: fmt.Sprintf("pass %s instead of context.%s()", ctxName, lit),
				Edits:   []TextEdit{c.pass.Edit(arg.Pos(), arg.End(), ctxName)},
			}
			c.pass.ReportFixf(arg.Pos(), fix, "context.%s() passed to %s while %s is in scope: cancellation stops here; pass %s (or a context.With* derivative) or annotate //cplint:detached-ok <why>", lit, callee, ctxName, ctxName)
			continue
		}
		c.pass.Reportf(arg.Pos(), "context derived from context.Background()/TODO() passed to %s while %s is in scope: cancellation stops here; derive from %s or annotate //cplint:detached-ok <why>", callee, ctxName, ctxName)
	}
}

// paramTypeAt returns the static type of argument position i,
// variadic-aware.
func paramTypeAt(sig *types.Signature, i int) types.Type {
	n := sig.Params().Len()
	if n == 0 {
		return nil
	}
	if sig.Variadic() && i >= n-1 {
		if sl, ok := sig.Params().At(n - 1).Type().(*types.Slice); ok {
			return sl.Elem()
		}
		return nil
	}
	if i < n {
		return sig.Params().At(i).Type()
	}
	return nil
}

// ctxPkgFunc returns the name of the context-package function a call
// targets ("Background", "TODO", "WithCancel", ...), or "".
func ctxPkgFunc(info *types.Info, call *ast.CallExpr) string {
	if call == nil {
		return ""
	}
	sel, ok := unparenExpr(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	f, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || f.Pkg() == nil || f.Pkg().Path() != "context" {
		return ""
	}
	return f.Name()
}

// literalDetached returns "Background" or "TODO" when the argument is
// literally that call, "" otherwise (derived or variable).
func literalDetached(info *types.Info, arg ast.Expr) string {
	call, ok := unparenExpr(arg).(*ast.CallExpr)
	if !ok {
		return ""
	}
	switch name := ctxPkgFunc(info, call); name {
	case "Background", "TODO":
		return name
	}
	return ""
}

// ctxParamName returns the first named context.Context parameter of a
// function type, or "" (no parameter, or only a blank one — a function
// that discards its context cannot propagate it).
func ctxParamName(info *types.Info, ft *ast.FuncType) string {
	if ft == nil || ft.Params == nil {
		return ""
	}
	for _, field := range ft.Params.List {
		if !isCtxType(info.TypeOf(field.Type)) {
			continue
		}
		for _, n := range field.Names {
			if n.Name != "_" {
				return n.Name
			}
		}
	}
	return ""
}

func calleeName(call *ast.CallExpr) string {
	switch fun := unparenExpr(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return "the callee"
}

// isCtxType reports whether t is context.Context.
func isCtxType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
