package lint

import (
	"go/ast"
	"go/types"
)

// ParShare inspects closures passed to par.Do / par.For and flags
// writes to captured variables that are not index-disjoint. The par
// pool's contract (DESIGN.md decision 2) is that every worker writes
// only slots addressed by its own index — par.For hands each closure a
// unique i, par.Do a unique worker id w — so the only writes a closure
// may perform against captured state are:
//
//   - element writes into a captured slice/array where the index
//     expression involves a variable local to the closure (the index
//     parameter, or anything derived from it like i+off or a loop
//     variable strided from w);
//   - writes to variables declared inside the closure (worker-private
//     state).
//
// Everything else is the shape of a data race: direct assignment to a
// captured scalar (sum += x), any write into a captured map (concurrent
// map writes race even on distinct keys), writes through captured
// pointers, and field writes on captured structs.
var ParShare = &Analyzer{
	Name: "parshare",
	Doc:  "flags non-index-disjoint writes to captured variables in par.Do/par.For closures",
	Run:  runParShare,
}

// parCallees maps the par entry points to the argument position of
// their worker closure.
var parCallees = map[string]int{
	"Do":  1, // Do(workers, fn)
	"For": 2, // For(n, workers, fn)
}

func runParShare(pass *Pass) error {
	if isParPackage(pass.Pkg.Path) {
		return nil // the pool itself hands indices out; nothing to check
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || !isParPackage(fn.Pkg().Path()) {
				return true
			}
			argPos, ok := parCallees[fn.Name()]
			if !ok || argPos >= len(call.Args) {
				return true
			}
			lit, ok := call.Args[argPos].(*ast.FuncLit)
			if !ok {
				return true // named function: its body is checked wherever it is defined
			}
			checkParClosure(pass, lit)
			return true
		})
	}
	return nil
}

func isParPackage(path string) bool {
	return path == "internal/par" || len(path) > len("internal/par") &&
		path[len(path)-len("/internal/par"):] == "/internal/par"
}

func checkParClosure(pass *Pass, lit *ast.FuncLit) {
	info := pass.Pkg.Info

	closureLocal := func(obj types.Object) bool {
		return obj != nil && lit.Pos() <= obj.Pos() && obj.Pos() < lit.End()
	}
	// indexOK reports whether an index expression involves at least one
	// closure-local variable — the static marker of index-disjointness
	// under the pool's unique-index contract.
	indexOK := func(e ast.Expr) bool {
		ok := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, isID := n.(*ast.Ident); isID {
				if v, isVar := info.Uses[id].(*types.Var); isVar && closureLocal(v) {
					ok = true
				}
			}
			return !ok
		})
		return ok
	}

	checkTarget := func(lhs ast.Expr) {
		pos := lhs.Pos()
		var disjoint, sawCapturedRoot, throughMap, throughPtr bool
		var rootName string
	unwrap:
		for {
			switch e := lhs.(type) {
			case *ast.Ident:
				obj, _ := info.Uses[e].(*types.Var)
				if obj == nil {
					if d, isVar := info.Defs[e].(*types.Var); isVar {
						obj = d
					}
				}
				if obj == nil || closureLocal(obj) {
					return // worker-private state
				}
				sawCapturedRoot = true
				rootName = obj.Name()
				break unwrap
			case *ast.IndexExpr:
				if t := info.TypeOf(e.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						throughMap = true
					}
				}
				if indexOK(e.Index) {
					disjoint = true
				}
				lhs = e.X
			case *ast.SelectorExpr:
				if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
					lhs = e.X
					continue
				}
				// Qualified identifier (pkg.Var): a package-level
				// variable is shared across every worker.
				if obj, ok := info.Uses[e.Sel].(*types.Var); ok {
					sawCapturedRoot = true
					rootName = obj.Name()
					break unwrap
				}
				lhs = e.X
			case *ast.StarExpr:
				throughPtr = true
				lhs = e.X
			case *ast.ParenExpr:
				lhs = e.X
			default:
				return
			}
		}
		if !sawCapturedRoot {
			return
		}
		switch {
		case throughMap:
			pass.Reportf(pos, "write into captured map %s from a par worker: concurrent map writes race even on distinct keys; write into an index-disjoint slice and merge serially", rootName)
		case throughPtr && !disjoint:
			pass.Reportf(pos, "write through captured pointer %s is shared across par workers; write into a slot indexed by the worker's index", rootName)
		case !disjoint:
			pass.Reportf(pos, "write to captured %s is shared across par workers (the shape of a data race); write into a slot indexed by the worker's index and reduce serially", rootName)
		}
	}

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if !isBlank(lhs) {
					checkTarget(lhs)
				}
			}
		case *ast.IncDecStmt:
			checkTarget(n.X)
		case *ast.FuncLit:
			// A nested closure inherits the same capture rules relative
			// to the par closure; keep descending (closureLocal is
			// judged against the outer lit, which is what matters for
			// sharing across workers).
			return true
		case *ast.CallExpr:
			// delete on a captured map is a map write.
			if fn, ok := n.Fun.(*ast.Ident); ok {
				if b, ok := info.Uses[fn].(*types.Builtin); ok && b.Name() == "delete" && len(n.Args) == 2 {
					if root := exprRootObj(info, n.Args[0]); root != nil && !closureLocal(root) {
						pass.Reportf(n.Pos(), "delete on captured map %s from a par worker races; collect deletions per worker and apply serially", root.Name())
					}
				}
			}
		}
		return true
	})
}
