package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
)

// Frozen mechanizes the ModelSet immutability contract behind the
// compiled-model cache: a *core.ModelSet is frozen once the first
// Generate/Stream/NewSource call lowers it — the compiled form is
// cached under a sync.Once, so any later mutation of the declarative
// model silently diverges from what the engine actually runs.
//
// The analyzer flags writes whose target is reachable from shared
// model storage: a dereference or field selection through a pointer to
// a model type, an element of a slice of model structs, a slot of a
// map holding model structs, or an element of a slice/map field read
// off a model struct (value copies share the backing array). Model
// types are ModelSet and every exported struct type in internal/core
// reachable from it through exported fields — DeviceModel, HourModel,
// ClusterModel, and the rest of the declarative family.
//
// The construction surface is whitelisted: internal/core's fit.go,
// fitstream.go, partialfit.go, and model.go (fitting and the JSON
// codec build the model before anyone can generate from it) and all of
// internal/fiveg
// (its adapters clone via an encode/decode round-trip and mutate the
// fresh copy — the idiom this analyzer exists to enforce). Elsewhere,
// code that builds fresh model values is exempted structurally: a
// write is fine when its root is a local initialized by a composite
// literal, &composite, new, make, or a zero-value declaration, since a
// fresh value cannot be the one the engine compiled. A justified
// exception carries //cplint:partial-ok <reason> on the write.
var Frozen = &Analyzer{
	Name: "frozen",
	Doc:  "flags writes to core.ModelSet-reachable state outside the construction surface",
	Run:  runFrozen,
}

// frozenWhitelistFiles are the internal/core files that constitute the
// model construction surface.
var frozenWhitelistFiles = map[string]bool{
	"fit.go":        true,
	"fitstream.go":  true,
	"partialfit.go": true,
	"model.go":      true,
}

func runFrozen(pass *Pass) error {
	if pathHasSuffix(pass.Pkg.Path, "internal/fiveg") {
		return nil // clone-then-mutate adapters: the sanctioned mutation idiom
	}
	core := corePackage(pass.Pkg)
	if core == nil {
		return nil
	}
	frozen := frozenTypes(core)
	if len(frozen) == 0 {
		return nil
	}
	inCore := pathHasSuffix(pass.Pkg.Path, "internal/core")
	for _, f := range pass.Pkg.Files {
		if inCore && frozenWhitelistFiles[filepath.Base(pass.Fset.Position(f.Package).Filename)] {
			continue
		}
		checkFrozenFile(pass, f, frozen)
	}
	return nil
}

// corePackage finds the internal/core type-checker package: the pass
// package itself, or one of its direct imports. A package that does
// not import core cannot name its types in an assignment target.
func corePackage(pkg *Package) *types.Package {
	if pkg.Types == nil {
		return nil
	}
	if pathHasSuffix(pkg.Path, "internal/core") {
		return pkg.Types
	}
	for _, imp := range pkg.Types.Imports() {
		if pathHasSuffix(imp.Path(), "internal/core") {
			return imp
		}
	}
	return nil
}

// frozenTypes computes the model family: ModelSet plus every struct
// type in core reachable from it through exported fields, unwrapping
// pointers, slices, arrays, and map values. The unexported
// compiledModel cache is unreachable through exported fields and so
// stays out of the set — writes to it belong to the (whitelisted)
// lowering code anyway.
func frozenTypes(core *types.Package) map[*types.TypeName]bool {
	root, ok := core.Scope().Lookup("ModelSet").(*types.TypeName)
	if !ok {
		return nil
	}
	set := map[*types.TypeName]bool{root: true}
	work := []*types.TypeName{root}
	for len(work) > 0 {
		tn := work[0]
		work = work[1:]
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			fld := st.Field(i)
			if !fld.Exported() {
				continue
			}
			if next := namedStructIn(fld.Type(), core); next != nil && !set[next] {
				set[next] = true
				work = append(work, next)
			}
		}
	}
	return set
}

// namedStructIn unwraps t (through pointers, slices, arrays, and map
// values) to a named struct type declared in pkg, or nil.
func namedStructIn(t types.Type, pkg *types.Package) *types.TypeName {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		case *types.Map:
			t = u.Elem()
		case *types.Named:
			obj := u.Obj()
			if obj.Pkg() == pkg {
				if _, isStruct := u.Underlying().(*types.Struct); isStruct {
					return obj
				}
			}
			return nil
		default:
			return nil
		}
	}
}

func checkFrozenFile(pass *Pass, f *ast.File, frozen map[*types.TypeName]bool) {
	info := pass.Pkg.Info
	fresh := freshRoots(info, f)
	check := func(pos token.Pos, lhs ast.Expr) {
		root, via := sharedModelWrite(info, lhs, frozen)
		if via == "" {
			return
		}
		if root != nil && fresh[root] {
			return // freshly built value, not yet anyone's compiled model
		}
		if d := directiveAt(pass.Pkg, DirPartialOK, pos); d != nil {
			return
		}
		pass.Reportf(pos,
			"write to %s mutates %s state reachable from core.ModelSet, which is frozen once generation compiles it (the cached compiled model would go stale); build a fresh model or clone first (encode/decode round-trip, as internal/fiveg does), or annotate //cplint:partial-ok <reason>",
			types.ExprString(lhs), via)
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if !isBlank(lhs) {
					check(n.Pos(), lhs)
				}
			}
		case *ast.IncDecStmt:
			check(n.Pos(), n.X)
		}
		return true
	})
}

// sharedModelWrite walks an assignment target from the outside in and
// reports whether the access path passes through shared model storage,
// returning the root object (for the fresh-value exemption) and the
// name of the model type whose storage is written ("" when the write
// is private). Shared steps are:
//
//   - dereference of, or field selection through, a pointer to a
//     model struct (the pointee is the shared model);
//   - indexing a slice, array, or map whose elements are model
//     structs (the backing store is shared regardless of how the
//     header was copied);
//   - indexing a slice or map read off a model struct — even a value
//     copy of the struct shares the reference-typed field's backing
//     store.
func sharedModelWrite(info *types.Info, lhs ast.Expr, frozen map[*types.TypeName]bool) (types.Object, string) {
	via := ""
	mark := func(t types.Type) {
		if via == "" {
			if tn := frozenNamed(t, frozen); tn != nil {
				via = tn.Name()
			}
		}
	}
	for {
		switch e := lhs.(type) {
		case *ast.Ident:
			obj := info.Uses[e]
			if obj == nil {
				obj = info.Defs[e]
			}
			return obj, via
		case *ast.ParenExpr:
			lhs = e.X
		case *ast.StarExpr:
			if pt, ok := info.TypeOf(e.X).(*types.Pointer); ok {
				mark(pt.Elem())
			}
			lhs = e.X
		case *ast.SelectorExpr:
			if pt, ok := info.TypeOf(e.X).(*types.Pointer); ok {
				mark(pt.Elem())
			}
			lhs = e.X
		case *ast.IndexExpr:
			switch xt := info.TypeOf(e.X).(type) {
			case *types.Slice:
				mark(xt.Elem())
			case *types.Array:
				mark(xt.Elem())
			case *types.Map:
				mark(xt.Elem())
			}
			// A slice/map field read off a model struct shares its
			// backing store even when the struct itself was copied.
			if sel, ok := e.X.(*ast.SelectorExpr); ok {
				mark(info.TypeOf(sel.X))
			}
			lhs = e.X
		default:
			return nil, via
		}
	}
}

// frozenNamed resolves t (through one level of pointer) to a frozen
// model type name, or nil.
func frozenNamed(t types.Type, frozen map[*types.TypeName]bool) *types.TypeName {
	if pt, ok := t.(*types.Pointer); ok {
		t = pt.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	if frozen[named.Obj()] {
		return named.Obj()
	}
	return nil
}

// freshRoots collects local variables initialized with storage that
// cannot alias an existing model: composite literals (and their
// addresses), new, make, or a zero-value declaration. Writes rooted in
// them are construction, not mutation.
func freshRoots(info *types.Info, f *ast.File) map[types.Object]bool {
	fresh := map[types.Object]bool{}
	markIfFresh := func(id *ast.Ident, rhs ast.Expr) {
		obj := info.Defs[id]
		if obj == nil {
			return
		}
		switch r := rhs.(type) {
		case nil:
			fresh[obj] = true // var x T — zero value
		case *ast.CompositeLit:
			fresh[obj] = true
		case *ast.UnaryExpr:
			if r.Op == token.AND {
				if _, ok := r.X.(*ast.CompositeLit); ok {
					fresh[obj] = true
				}
			}
		case *ast.CallExpr:
			if fn, ok := r.Fun.(*ast.Ident); ok {
				if b, ok := info.Uses[fn].(*types.Builtin); ok && (b.Name() == "new" || b.Name() == "make") {
					fresh[obj] = true
				}
			}
		case *ast.Ident:
			if r.Name == "nil" {
				fresh[obj] = true
			}
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE || len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
					markIfFresh(id, n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			for i, id := range n.Names {
				var rhs ast.Expr
				if i < len(n.Values) {
					rhs = n.Values[i]
				}
				markIfFresh(id, rhs)
			}
		}
		return true
	})
	return fresh
}
