package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// HotCall propagates the //cplint:hotpath contract through the module
// call graph: a function reachable from a hot root — over static calls
// and CHA-resolved module-local interface calls — is itself on the hot
// path, even without an annotation, and hotalloc's allocation checks
// run over its body with the full call chain named in each diagnostic.
//
// Two things keep the propagated check usable on a real tree. First,
// early-exit branches (if/else blocks and switch/select clauses that
// end by returning or panicking) are treated as off the steady path:
// error construction (`return s.fail(fmt.Errorf(...))`) and one-shot
// growth allocate there without tainting the chain, and call edges
// leaving such branches are pruned. Second, a reasoned
// //cplint:coldpath on a function declaration stops propagation into
// it. Annotating a function //cplint:hotpath re-enables hotalloc's
// strict whole-body check; the suggested fix does exactly that.
var HotCall = &Analyzer{
	Name:       "hotcall",
	Doc:        "flags allocation in unannotated functions reachable from //cplint:hotpath roots, naming the call chain",
	Run:        runHotCall,
	NeedsGraph: true,
}

func runHotCall(pass *Pass) error {
	g := pass.Graph
	if g == nil {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			gf := g.funcs[obj]
			if gf == nil || gf.hotRoot || gf.Cold || gf.hotFrom == nil {
				continue
			}
			checkPropagated(pass, gf, fd)
		}
	}
	return nil
}

// checkPropagated runs the allocation checks over one call-graph-hot
// function, suffixing every finding with the chain that made it hot.
// The first finding carries the annotation-propagating fix.
func checkPropagated(pass *Pass, gf *GraphFunc, fd *ast.FuncDecl) {
	chain := pass.Graph.chainOf(gf)
	suffix := fmt.Sprintf(" [hot chain: %s]", chainString(chain))
	root := chain[0].displayName()
	first := true
	c := &allocChecker{
		pass: pass,
		skip: gf.coldAt,
		emit: func(pos token.Pos, msg string) {
			msg += suffix
			if first {
				first = false
				fix := SuggestedFix{
					Message: "annotate //cplint:hotpath to make the propagated contract explicit (hotalloc then checks the whole body strictly)",
					Edits: []TextEdit{
						pass.Edit(fd.Pos(), fd.Pos(), fmt.Sprintf("//cplint:hotpath propagated: reached from %s\n", root)),
					},
				}
				pass.ReportFixf(pos, fix, "%s", msg)
				return
			}
			pass.Reportf(pos, "%s", msg)
		},
	}
	checkAllocBody(c, fd)
}
