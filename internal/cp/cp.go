// Package cp defines the shared control-plane vocabulary of the cellular
// network: control event types, UE protocol states, device types, and the
// millisecond time base used throughout the library.
//
// The definitions follow 3GPP TS 23.401 (LTE / EPS) and TS 23.501/23.502
// (5G) as summarized in the IMC'23 paper "Modeling and Generating
// Control-Plane Traffic for Cellular Networks".
package cp

import "fmt"

// Millis is the time base of the library: milliseconds since the start of
// the trace epoch. The paper's carrier trace has millisecond granularity,
// so nothing finer is needed, and int64 milliseconds cover ±292 million
// years — enough for any trace.
type Millis int64

// Common durations expressed in the Millis time base.
const (
	Second Millis = 1000
	Minute Millis = 60 * Second
	Hour   Millis = 60 * Minute
	Day    Millis = 24 * Hour
	Week   Millis = 7 * Day
)

// Seconds converts a duration in Millis to floating-point seconds.
func (m Millis) Seconds() float64 { return float64(m) / float64(Second) }

// MillisFromSeconds converts floating-point seconds to Millis, rounding to
// the nearest millisecond.
func MillisFromSeconds(s float64) Millis {
	if s < 0 {
		return Millis(s*1000 - 0.5)
	}
	return Millis(s*1000 + 0.5)
}

// HourOfDay returns the hour-of-day bucket (0..23) for a timestamp.
func (m Millis) HourOfDay() int {
	h := int((m / Hour) % 24)
	if h < 0 {
		h += 24
	}
	return h
}

// HourIndex returns the absolute hour index since the epoch. Negative
// timestamps land in negative hour indices.
func (m Millis) HourIndex() int {
	h := m / Hour
	if m < 0 && m%Hour != 0 {
		h--
	}
	return int(h)
}

// EventType enumerates the six primary LTE control-plane event types
// exchanged among UE, RAN and the mobile core network (paper Table 1).
type EventType uint8

const (
	// Attach registers the UE with the mobile core network (power-on).
	Attach EventType = iota
	// Detach deregisters the UE from the core (power-off).
	Detach
	// ServiceRequest creates a signaling connection so the UE can send or
	// receive signaling messages or data (IDLE -> CONNECTED).
	ServiceRequest
	// S1ConnRelease releases the signaling connection and associated
	// data-plane resources (CONNECTED -> IDLE).
	S1ConnRelease
	// Handover switches the UE from its current serving cell to another
	// cell; it only occurs while the UE is CONNECTED.
	Handover
	// TrackingAreaUpdate updates the UE's tracking area; it can occur in
	// both CONNECTED and IDLE.
	TrackingAreaUpdate

	numEventTypes = iota
)

// NumEventTypes is the number of distinct LTE control-plane event types.
const NumEventTypes = int(numEventTypes)

// EventTypes lists all LTE event types in canonical (Table 1) order.
var EventTypes = [NumEventTypes]EventType{
	Attach, Detach, ServiceRequest, S1ConnRelease, Handover, TrackingAreaUpdate,
}

var eventTypeNames = [NumEventTypes]string{
	"ATCH", "DTCH", "SRV_REQ", "S1_CONN_REL", "HO", "TAU",
}

// String returns the paper's abbreviation for the event type, e.g.
// "SRV_REQ" for ServiceRequest.
func (e EventType) String() string {
	if int(e) >= len(eventTypeNames) {
		return fmt.Sprintf("EventType(%d)", uint8(e))
	}
	return eventTypeNames[e]
}

// Valid reports whether e is one of the defined LTE event types.
func (e EventType) Valid() bool { return int(e) < NumEventTypes }

// ParseEventType parses the abbreviation produced by String.
func ParseEventType(s string) (EventType, error) {
	for i, n := range eventTypeNames {
		if n == s {
			return EventType(i), nil
		}
	}
	return 0, fmt.Errorf("cp: unknown event type %q", s)
}

// FiveGName returns the 5G SA (standalone) name for the event per the
// paper's Table 2 mapping. TrackingAreaUpdate has no 5G SA counterpart and
// maps to "-"; ok is false in that case.
func (e EventType) FiveGName() (name string, ok bool) {
	switch e {
	case Attach:
		return "REGISTER", true
	case Detach:
		return "DEREGISTER", true
	case ServiceRequest:
		return "SRV_REQ", true
	case S1ConnRelease:
		return "AN_REL", true
	case Handover:
		return "HO", true
	case TrackingAreaUpdate:
		return "-", false
	}
	return "", false
}

// DeviceType enumerates the three primary device categories in the paper's
// trace collection, derived from the Type Allocation Code of the IMEI.
type DeviceType uint8

const (
	// Phone devices (smartphones).
	Phone DeviceType = iota
	// ConnectedCar devices (vehicular modems).
	ConnectedCar
	// Tablet devices.
	Tablet

	numDeviceTypes = iota
)

// NumDeviceTypes is the number of distinct device types.
const NumDeviceTypes = int(numDeviceTypes)

// DeviceTypes lists all device types in canonical order.
var DeviceTypes = [NumDeviceTypes]DeviceType{Phone, ConnectedCar, Tablet}

var deviceTypeNames = [NumDeviceTypes]string{"phone", "car", "tablet"}

// String returns a short lowercase name ("phone", "car", "tablet").
func (d DeviceType) String() string {
	if int(d) >= len(deviceTypeNames) {
		return fmt.Sprintf("DeviceType(%d)", uint8(d))
	}
	return deviceTypeNames[d]
}

// Valid reports whether d is one of the defined device types.
func (d DeviceType) Valid() bool { return int(d) < NumDeviceTypes }

// ParseDeviceType parses the name produced by String.
func ParseDeviceType(s string) (DeviceType, error) {
	for i, n := range deviceTypeNames {
		if n == s {
			return DeviceType(i), nil
		}
	}
	return 0, fmt.Errorf("cp: unknown device type %q", s)
}

// UEID identifies a single User Equipment within a trace. Every generated
// event is labeled with its originating UE (design goal "Event-Owner
// Labeling" in §3.2 of the paper).
type UEID uint32

// EMMState is the EPS Mobility Management state of a UE (paper Fig. 1a).
type EMMState uint8

const (
	// Deregistered: the UE is not registered with the core network.
	Deregistered EMMState = iota
	// Registered: the UE is registered (attached) with the core network.
	Registered
)

// String returns "DEREGISTERED" or "REGISTERED".
func (s EMMState) String() string {
	if s == Deregistered {
		return "DEREGISTERED"
	}
	return "REGISTERED"
}

// ECMState is the EPS Connection Management state of a UE (paper Fig. 1b).
// It is only meaningful while the UE is Registered.
type ECMState uint8

const (
	// Idle: no signaling connection between UE and core.
	Idle ECMState = iota
	// Connected: a signaling connection exists.
	Connected
)

// String returns "IDLE" or "CONNECTED".
func (s ECMState) String() string {
	if s == Idle {
		return "IDLE"
	}
	return "CONNECTED"
}

// UEState enumerates the four coarse protocol states a UE occupies when
// the EMM and ECM machines are merged (paper §4.1: REGISTERED,
// DEREGISTERED, CONNECTED, IDLE; a registered UE is always either
// CONNECTED or IDLE, so the merged machine has three reachable states and
// the REGISTERED macro-state is the union of CONNECTED and IDLE).
type UEState uint8

const (
	// StateDeregistered corresponds to EMM_DEREGISTERED.
	StateDeregistered UEState = iota
	// StateConnected corresponds to EMM_REGISTERED + ECM_CONNECTED.
	StateConnected
	// StateIdle corresponds to EMM_REGISTERED + ECM_IDLE.
	StateIdle

	numUEStates = iota
)

// NumUEStates is the number of merged EMM-ECM states.
const NumUEStates = int(numUEStates)

var ueStateNames = [NumUEStates]string{"DEREGISTERED", "CONNECTED", "IDLE"}

// String returns the paper's name for the merged state.
func (s UEState) String() string {
	if int(s) < len(ueStateNames) {
		return ueStateNames[s]
	}
	return fmt.Sprintf("UEState(%d)", uint8(s))
}

// Registered reports whether the merged state implies EMM_REGISTERED.
func (s UEState) Registered() bool { return s == StateConnected || s == StateIdle }
