package cp

import (
	"testing"
	"testing/quick"
)

func TestMillisConstants(t *testing.T) {
	if Second != 1000 {
		t.Fatalf("Second = %d, want 1000", Second)
	}
	if Hour != 3_600_000 {
		t.Fatalf("Hour = %d, want 3600000", Hour)
	}
	if Day != 24*Hour || Week != 7*Day {
		t.Fatalf("Day/Week wrong: %d %d", Day, Week)
	}
}

func TestMillisSecondsRoundTrip(t *testing.T) {
	cases := []float64{0, 0.001, 1, 1.5, 59.999, 3600, -2.5}
	for _, s := range cases {
		m := MillisFromSeconds(s)
		if got := m.Seconds(); got != s {
			t.Errorf("round trip %v -> %d -> %v", s, m, got)
		}
	}
}

func TestMillisFromSecondsRounds(t *testing.T) {
	if got := MillisFromSeconds(0.0004); got != 0 {
		t.Errorf("0.0004s = %d ms, want 0", got)
	}
	if got := MillisFromSeconds(0.0006); got != 1 {
		t.Errorf("0.0006s = %d ms, want 1", got)
	}
	if got := MillisFromSeconds(-0.0006); got != -1 {
		t.Errorf("-0.0006s = %d ms, want -1", got)
	}
}

func TestHourOfDay(t *testing.T) {
	cases := []struct {
		m    Millis
		want int
	}{
		{0, 0},
		{Hour - 1, 0},
		{Hour, 1},
		{23 * Hour, 23},
		{Day, 0},
		{Day + 5*Hour + 30*Minute, 5},
		{Week + 13*Hour, 13},
	}
	for _, c := range cases {
		if got := c.m.HourOfDay(); got != c.want {
			t.Errorf("HourOfDay(%d) = %d, want %d", c.m, got, c.want)
		}
	}
}

func TestHourIndex(t *testing.T) {
	cases := []struct {
		m    Millis
		want int
	}{
		{0, 0},
		{Hour - 1, 0},
		{Hour, 1},
		{Day, 24},
		{-1, -1},
		{-Hour, -1},
		{-Hour - 1, -2},
	}
	for _, c := range cases {
		if got := c.m.HourIndex(); got != c.want {
			t.Errorf("HourIndex(%d) = %d, want %d", c.m, got, c.want)
		}
	}
}

func TestHourOfDayMatchesHourIndexMod24(t *testing.T) {
	f := func(raw int64) bool {
		m := Millis(raw % int64(10*Week))
		if m < 0 {
			m = -m
		}
		return m.HourOfDay() == m.HourIndex()%24
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEventTypeStringsRoundTrip(t *testing.T) {
	want := map[EventType]string{
		Attach:             "ATCH",
		Detach:             "DTCH",
		ServiceRequest:     "SRV_REQ",
		S1ConnRelease:      "S1_CONN_REL",
		Handover:           "HO",
		TrackingAreaUpdate: "TAU",
	}
	for e, name := range want {
		if e.String() != name {
			t.Errorf("%d.String() = %q, want %q", e, e.String(), name)
		}
		parsed, err := ParseEventType(name)
		if err != nil || parsed != e {
			t.Errorf("ParseEventType(%q) = %v, %v; want %v", name, parsed, err, e)
		}
	}
	if _, err := ParseEventType("NOPE"); err == nil {
		t.Error("ParseEventType accepted garbage")
	}
}

func TestEventTypeValid(t *testing.T) {
	for _, e := range EventTypes {
		if !e.Valid() {
			t.Errorf("%v should be valid", e)
		}
	}
	if EventType(200).Valid() {
		t.Error("EventType(200) should be invalid")
	}
}

func TestFiveGNames(t *testing.T) {
	cases := []struct {
		e    EventType
		name string
		ok   bool
	}{
		{Attach, "REGISTER", true},
		{Detach, "DEREGISTER", true},
		{ServiceRequest, "SRV_REQ", true},
		{S1ConnRelease, "AN_REL", true},
		{Handover, "HO", true},
		{TrackingAreaUpdate, "-", false},
	}
	for _, c := range cases {
		name, ok := c.e.FiveGName()
		if name != c.name || ok != c.ok {
			t.Errorf("%v.FiveGName() = %q,%v; want %q,%v", c.e, name, ok, c.name, c.ok)
		}
	}
}

func TestDeviceTypeStringsRoundTrip(t *testing.T) {
	for _, d := range DeviceTypes {
		parsed, err := ParseDeviceType(d.String())
		if err != nil || parsed != d {
			t.Errorf("ParseDeviceType(%q) = %v, %v", d.String(), parsed, err)
		}
	}
	if _, err := ParseDeviceType("toaster"); err == nil {
		t.Error("ParseDeviceType accepted garbage")
	}
	if DeviceType(9).Valid() {
		t.Error("DeviceType(9) should be invalid")
	}
}

func TestUEStateNames(t *testing.T) {
	if StateDeregistered.String() != "DEREGISTERED" ||
		StateConnected.String() != "CONNECTED" ||
		StateIdle.String() != "IDLE" {
		t.Fatalf("unexpected state names: %v %v %v",
			StateDeregistered, StateConnected, StateIdle)
	}
	if StateDeregistered.Registered() {
		t.Error("DEREGISTERED must not report Registered")
	}
	if !StateConnected.Registered() || !StateIdle.Registered() {
		t.Error("CONNECTED and IDLE must report Registered")
	}
}

func TestEMMAndECMStrings(t *testing.T) {
	if Deregistered.String() != "DEREGISTERED" || Registered.String() != "REGISTERED" {
		t.Error("EMM state names wrong")
	}
	if Idle.String() != "IDLE" || Connected.String() != "CONNECTED" {
		t.Error("ECM state names wrong")
	}
}
