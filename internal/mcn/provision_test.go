package mcn

import (
	"math"
	"testing"

	"cptraffic/internal/cp"
	"cptraffic/internal/trace"
	"cptraffic/internal/world"
)

func uniformTrace(t *testing.T, n int, gapSec float64) *trace.Trace {
	t.Helper()
	tr := trace.New()
	tr.SetDevice(1, cp.Phone)
	for i := 0; i < n; i++ {
		tr.Append(trace.Event{
			T:    cp.MillisFromSeconds(float64(i) * gapSec),
			UE:   1,
			Type: cp.TrackingAreaUpdate, // MME-only: isolates one NF
		})
	}
	return tr
}

func evenCapacity(rate float64) Capacity {
	var c Capacity
	for n := range c {
		c[n] = rate
	}
	return c
}

func TestProvisionNoQueueingWhenOverprovisioned(t *testing.T) {
	tr := uniformTrace(t, 100, 1.0) // 1 tx/s to the MME
	rep, err := Provision(tr, evenCapacity(10))
	if err != nil {
		t.Fatal(err)
	}
	mme := rep.PerNF[NFMME]
	if mme.Transactions != 100 {
		t.Fatalf("MME transactions = %d", mme.Transactions)
	}
	if mme.MeanDelay != 0 || mme.MaxDelay != 0 {
		t.Fatalf("overprovisioned MME queued: %+v", mme)
	}
	if mme.Utilization < 0.09 || mme.Utilization > 0.12 {
		t.Fatalf("utilization = %v, want ~0.1", mme.Utilization)
	}
	// The other NFs see nothing from TAU.
	if rep.PerNF[NFSGW].Transactions != 0 {
		t.Fatal("SGW saw TAU transactions")
	}
}

func TestProvisionQueueBuildsUpWhenUnderprovisioned(t *testing.T) {
	// 1 tx/s offered, 0.5 tx/s capacity: delay grows linearly; the last
	// of N arrivals waits ~N*(1/0.5 - 1) s.
	tr := uniformTrace(t, 100, 1.0)
	rep, err := Provision(tr, evenCapacity(0.5))
	if err != nil {
		t.Fatal(err)
	}
	mme := rep.PerNF[NFMME]
	if mme.Utilization < 1.9 || mme.Utilization > 2.2 {
		t.Fatalf("utilization = %v, want ~2", mme.Utilization)
	}
	if mme.MaxDelay < 90 {
		t.Fatalf("max delay = %v, want ~99 s", mme.MaxDelay)
	}
	if mme.P99Delay <= mme.MeanDelay {
		t.Fatalf("p99 (%v) should exceed mean (%v)", mme.P99Delay, mme.MeanDelay)
	}
}

func TestProvisionValidation(t *testing.T) {
	tr := uniformTrace(t, 2, 1)
	if _, err := Provision(tr, Capacity{}); err == nil {
		t.Fatal("zero capacity accepted")
	}
	unsorted := uniformTrace(t, 2, 1)
	unsorted.Events[0], unsorted.Events[1] = unsorted.Events[1], unsorted.Events[0]
	if _, err := Provision(unsorted, evenCapacity(1)); err == nil {
		t.Fatal("unsorted trace accepted")
	}
}

func TestSuggestCapacityMeetsTarget(t *testing.T) {
	tr, err := world.Generate(world.Options{NumUEs: 200, Duration: 2 * cp.Hour, Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	const target = 0.050 // 50 ms p99
	cap, err := SuggestCapacity(tr, target)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Provision(tr, cap)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < NumNFs; n++ {
		if rep.PerNF[n].Transactions == 0 {
			continue
		}
		if rep.PerNF[n].P99Delay > target*1.05 {
			t.Errorf("%v: p99 %.3fs exceeds target %.3fs at suggested rate %.1f/s",
				NF(n), rep.PerNF[n].P99Delay, target, cap[n])
		}
		// The suggestion should not be grossly overprovisioned: 10% less
		// capacity must violate the target (within bracket tolerance).
		tight := cap
		tight[n] *= 0.5
		tightRep, err := Provision(tr, tight)
		if err != nil {
			t.Fatal(err)
		}
		if tightRep.PerNF[n].P99Delay <= target && cap[n] > 2 {
			t.Errorf("%v: halving capacity still meets target — suggestion too loose", NF(n))
		}
	}
	// The MME sees every event, so it processes the most transactions.
	// (Its *capacity* need not strictly dominate: p99 is a quantile over
	// different job populations, and the extra MME-only TAUs can arrive
	// at quiet times.) Require it to be at least in the same league.
	for n := 1; n < NumNFs; n++ {
		if rep.PerNF[NFMME].Transactions < rep.PerNF[n].Transactions {
			t.Errorf("MME transactions (%d) below %v (%d)",
				rep.PerNF[NFMME].Transactions, NF(n), rep.PerNF[n].Transactions)
		}
		if cap[NFMME] < 0.8*cap[n] {
			t.Errorf("MME capacity (%.1f) far below %v (%.1f)", cap[NFMME], NF(n), cap[n])
		}
	}
}

func TestSuggestCapacityValidation(t *testing.T) {
	tr := uniformTrace(t, 5, 1)
	if _, err := SuggestCapacity(tr, 0); err == nil {
		t.Fatal("zero target accepted")
	}
	if _, err := SuggestCapacity(trace.New(), 1); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestP99AtMonotone(t *testing.T) {
	arrivals := make([]float64, 500)
	for i := range arrivals {
		arrivals[i] = float64(i) * 0.1
	}
	prev := math.Inf(1)
	for _, rate := range []float64{5, 10, 20, 40} {
		d := p99At(arrivals, rate)
		if d > prev {
			t.Fatalf("p99 not monotone in rate: %v then %v", prev, d)
		}
		prev = d
	}
}
