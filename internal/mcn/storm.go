package mcn

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"cptraffic/internal/cp"
	"cptraffic/internal/trace"
)

// StormConfig parameterizes a signaling-storm replay: per-NF service
// capacities, the client retry discipline, the queue bound, the report
// binning, the 4G/5G population split, and the fault schedule.
type StormConfig struct {
	// Capacity is each NF's healthy service rate in transactions per
	// second. Entries <= 0 are derived from the offered load with 30%
	// headroom (1.3x the NF's mean transaction rate, floor 1 tx/s) — a
	// core sized comfortably for the healthy trace, so every observed
	// storm is attributable to the fault schedule.
	Capacity Capacity
	// TimeoutSec is the client retry timeout: a transaction whose
	// queueing wait exceeds it is re-sent. 0 means the default 1 s.
	TimeoutSec float64
	// MaxRetries caps re-sends per transaction. 0 means the default 2;
	// negative disables retries entirely.
	MaxRetries int
	// MaxQueue bounds each NF's pending-transaction queue; arrivals
	// beyond it are dropped. 0 means the default 10000.
	MaxQueue int
	// Bin is the report time-series resolution. 0 means one minute.
	Bin cp.Millis
	// SAShare is the fraction of UEs treated as 5G standalone. SA has no
	// tracking-area update (paper Table 2), so TAU events of SA UEs are
	// filtered before the replay; membership is a deterministic hash of
	// the UE id, independent of population size.
	SAShare float64
	// Faults is the fault schedule, validated by ValidateSchedule.
	Faults []Fault
}

const (
	defaultTimeoutSec = 1.0
	defaultMaxRetries = 2
	defaultMaxQueue   = 10000
	// capacityHeadroom sizes derived capacities above the healthy
	// offered load.
	capacityHeadroom = 1.3
)

// NFStormReport is one network function's view of the storm.
type NFStormReport struct {
	NF           string  `json:"nf"`
	Capacity     float64 `json:"capacity_tps"`
	Transactions int     `json:"transactions"`
	Drops        int     `json:"drops"`
	Retries      int     `json:"retries"`
	PeakQueue    int     `json:"peak_queue"`
	PeakDelaySec float64 `json:"peak_delay_sec"`
	// QueueDepth is the number of accepted-but-uncompleted transactions
	// at each bin boundary; DropSeries and RetrySeries count drops and
	// re-sends per bin.
	QueueDepth  []int `json:"queue_depth"`
	DropSeries  []int `json:"drop_series"`
	RetrySeries []int `json:"retry_series"`
}

// AttachLatency is the per-bin latency profile of attach procedures:
// the time from the ATCH event to the completion of its slowest NF
// transaction. Attaches with any dropped transaction count in Dropped
// and are excluded from the latency series.
type AttachLatency struct {
	Count   []int     `json:"count"`
	MeanSec []float64 `json:"mean_sec"`
	MaxSec  []float64 `json:"max_sec"`
	Dropped int       `json:"dropped"`
}

// StormReport is the storm-propagation report of one replay: how load,
// queue depth, loss, retries, and attach latency moved through the NF
// pool under the fault schedule. It serializes deterministically —
// identical replays produce identical bytes.
type StormReport struct {
	Scenario         string          `json:"scenario,omitempty"`
	BinSec           float64         `json:"bin_sec"`
	Bins             int             `json:"bins"`
	SpanSec          float64         `json:"span_sec"`
	Events           int             `json:"events"`
	InjectedAttaches int             `json:"injected_attaches"`
	FilteredTAUs     int             `json:"filtered_taus"`
	PerNF            []NFStormReport `json:"per_nf"`
	Attach           AttachLatency   `json:"attach"`
}

// WriteJSON serializes the report as indented JSON. The field order is
// fixed by the struct, and every number is the result of the serial
// replay fold, so the bytes are identical for identical inputs.
func (r *StormReport) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// SAMember reports whether a UE belongs to the 5G SA share, via the same
// multiplicative hash the instance shard uses so membership is
// deterministic and independent of population size.
func SAMember(ue cp.UEID, share float64) bool {
	if share <= 0 {
		return false
	}
	if share >= 1 {
		return true
	}
	h := uint64(ue) * 0x9E3779B97F4A7C15
	return float64(h>>11)/float64(uint64(1)<<53) < share
}

// nfQueue tracks one NF's outstanding transactions as a FIFO of
// completion times (completions are monotonic, so a head-indexed slice
// suffices and its backing array is reused).
type nfQueue struct {
	done []float64
	head int
}

func (q *nfQueue) len() int { return len(q.done) - q.head }

func (q *nfQueue) push(t float64) { q.done = append(q.done, t) }

// evict pops every transaction completed by time t.
func (q *nfQueue) evict(t float64) {
	for q.head < len(q.done) && q.done[q.head] <= t {
		q.head++
	}
	if q.head == len(q.done) {
		q.done, q.head = q.done[:0], 0
	}
}

// faultWindow is a pre-resolved fault window in float seconds.
type faultWindow struct {
	start, end float64
	factor     float64
}

// stormState is the per-replay engine state.
type stormState struct {
	cfg      StormConfig
	cap      Capacity
	timeout  float64
	retries  int
	maxQueue int

	// per-NF fault windows, in schedule order.
	outages   [NumNFs][]faultWindow
	slowdowns [NumNFs][]faultWindow
	storms    [NumNFs][]faultWindow

	free  [NumNFs]float64
	queue [NumNFs]nfQueue

	lo   cp.Millis
	bin  cp.Millis
	bins int

	arr  [NumNFs][]int // accepted arrivals per bin
	comp [NumNFs][]int // completions per bin (within horizon)
	drop [NumNFs][]int
	rtry [NumNFs][]int

	rep *StormReport
}

// skipOutage pushes a service start time past any active outage window.
func (s *stormState) skipOutage(n int, start float64) float64 {
	for moved := true; moved; {
		moved = false
		for _, w := range s.outages[n] {
			if start >= w.start && start < w.end {
				start = w.end
				moved = true
			}
		}
	}
	return start
}

// serviceTime returns one transaction's service duration at an NF, with
// every active slowdown compounding.
func (s *stormState) serviceTime(n int, at float64) float64 {
	rate := s.cap[n]
	for _, w := range s.slowdowns[n] {
		if at >= w.start && at < w.end {
			rate /= w.factor
		}
	}
	return 1 / rate
}

// timeoutAt returns the client retry timeout for an NF at a time, with
// every active retry storm compounding.
func (s *stormState) timeoutAt(n int, at float64) float64 {
	tmo := s.timeout
	for _, w := range s.storms[n] {
		if at >= w.start && at < w.end {
			tmo /= w.factor
		}
	}
	return tmo
}

func (s *stormState) binOf(t cp.Millis) int {
	b := int((t - s.lo) / s.bin)
	if b < 0 {
		b = 0
	}
	if b >= s.bins {
		b = s.bins - 1
	}
	return b
}

// injectedAttaches expands every mass_reattach fault into its wave of
// synthetic ATCH events: the first round(Fraction x population) UEs in
// ascending id order, spread uniformly over the fault window. The wave
// is returned in canonical event order.
func injectedAttaches(ids []cp.UEID, faults []Fault) []trace.Event {
	var out []trace.Event
	for _, f := range faults {
		if f.Kind != FaultMassReattach {
			continue
		}
		k := int(math.Round(f.Fraction * float64(len(ids))))
		if k <= 0 {
			continue
		}
		if k > len(ids) {
			k = len(ids)
		}
		for i := 0; i < k; i++ {
			t := f.Start + cp.Millis(int64(i)*int64(f.Duration)/int64(k))
			out = append(out, trace.Event{T: t, UE: ids[i], Type: cp.Attach})
		}
	}
	// Waves from different faults interleave; restore canonical order.
	// Each wave is already sorted, so this is nearly free.
	sortEvents(out)
	return out
}

// sortEvents sorts events into canonical Event.Before order with a
// simple merge-friendly insertion-free sort (stdlib sort).
func sortEvents(evs []trace.Event) {
	if len(evs) < 2 {
		return
	}
	tr := trace.Trace{Events: evs}
	if !tr.Sorted() {
		tr.Sort()
	}
}

// ReplayStorm replays a sorted trace through the fault-bearing FIFO
// queueing model of the five network functions and reports storm
// propagation: per-NF queue depth, drop and retry counts, and the
// attach-latency profile, all as time series.
//
// The replay is a single serial fold over the merged (trace + injected
// re-attach) event stream, so the report — like everything else in this
// repo — is byte-identical for identical inputs at any worker count of
// the stages that produced the trace.
func ReplayStorm(tr *trace.Trace, cfg StormConfig) (*StormReport, error) {
	if tr.Len() == 0 {
		return nil, fmt.Errorf("mcn: ReplayStorm needs a non-empty trace")
	}
	if !tr.Sorted() {
		return nil, fmt.Errorf("mcn: ReplayStorm needs a sorted trace")
	}
	if cfg.SAShare < 0 || cfg.SAShare > 1 {
		return nil, fmt.Errorf("mcn: SAShare must be in [0, 1]")
	}
	if err := ValidateSchedule(cfg.Faults); err != nil {
		return nil, err
	}

	s := &stormState{cfg: cfg}
	s.timeout = cfg.TimeoutSec
	if s.timeout == 0 {
		s.timeout = defaultTimeoutSec
	}
	s.retries = cfg.MaxRetries
	if s.retries == 0 {
		s.retries = defaultMaxRetries
	}
	s.maxQueue = cfg.MaxQueue
	if s.maxQueue == 0 {
		s.maxQueue = defaultMaxQueue
	}
	s.bin = cfg.Bin
	if s.bin == 0 {
		s.bin = cp.Minute
	}
	if s.bin < 0 {
		return nil, fmt.Errorf("mcn: Bin must be positive")
	}

	for _, f := range cfg.Faults {
		w := faultWindow{start: f.Start.Seconds(), end: f.End().Seconds(), factor: f.Factor}
		switch f.Kind {
		case FaultOutage:
			s.outages[f.NF] = append(s.outages[f.NF], w)
		case FaultSlowdown:
			s.slowdowns[f.NF] = append(s.slowdowns[f.NF], w)
		case FaultRetryStorm:
			s.storms[f.NF] = append(s.storms[f.NF], w)
		case FaultMassReattach:
			// Expanded into injected events below.
		default:
			return nil, fmt.Errorf("mcn: invalid fault kind %d", f.Kind)
		}
	}

	injected := injectedAttaches(tr.UEs(), cfg.Faults)

	// The report horizon covers the trace, every fault window, and every
	// injected event.
	lo, hi := tr.Span()
	for _, f := range cfg.Faults {
		if f.Start < lo {
			lo = f.Start
		}
		if f.End() > hi {
			hi = f.End()
		}
	}
	if len(injected) > 0 {
		if injected[0].T < lo {
			lo = injected[0].T
		}
		if last := injected[len(injected)-1].T + 1; last > hi {
			hi = last
		}
	}
	s.lo = lo
	s.bins = int((hi - lo + s.bin - 1) / s.bin)
	if s.bins < 1 {
		s.bins = 1
	}
	spanSec := (hi - lo).Seconds()

	// Resolve capacities: explicit entries as given, the rest derived
	// from the healthy offered load (filtered + injected) with headroom.
	s.cap = cfg.Capacity
	var offered [NumNFs]int
	countTx := func(e trace.Event) {
		tx := Transactions(e.Type)
		for n := 0; n < NumNFs; n++ {
			offered[n] += tx[n]
		}
	}
	for _, e := range tr.Events {
		if SAMember(e.UE, cfg.SAShare) && e.Type == cp.TrackingAreaUpdate {
			continue
		}
		countTx(e)
	}
	for _, e := range injected {
		countTx(e)
	}
	for n := 0; n < NumNFs; n++ {
		if s.cap[n] <= 0 {
			derived := capacityHeadroom * float64(offered[n]) / spanSec
			if derived < 1 {
				derived = 1
			}
			s.cap[n] = derived
		}
	}

	rep := &StormReport{
		BinSec:  s.bin.Seconds(),
		Bins:    s.bins,
		SpanSec: spanSec,
		PerNF:   make([]NFStormReport, NumNFs),
		Attach: AttachLatency{
			Count:   make([]int, s.bins),
			MeanSec: make([]float64, s.bins),
			MaxSec:  make([]float64, s.bins),
		},
	}
	s.rep = rep
	for n := 0; n < NumNFs; n++ {
		s.arr[n] = make([]int, s.bins)
		s.comp[n] = make([]int, s.bins)
		s.drop[n] = make([]int, s.bins)
		s.rtry[n] = make([]int, s.bins)
	}
	attachSum := make([]float64, s.bins)

	// Merge the sorted trace with the sorted injected wave; ties go to
	// the trace event (a stable, documented choice).
	j := 0
	process := func(e trace.Event, isInjected bool) {
		if !isInjected && SAMember(e.UE, cfg.SAShare) && e.Type == cp.TrackingAreaUpdate {
			rep.FilteredTAUs++
			return
		}
		rep.Events++
		if isInjected {
			rep.InjectedAttaches++
		}
		t := e.T.Seconds()
		b := s.binOf(e.T)
		tx := Transactions(e.Type)
		dropped := false
		latency := 0.0
		for n := 0; n < NumNFs; n++ {
			for k := 0; k < tx[n]; k++ {
				q := &s.queue[n]
				q.evict(t)
				if q.len() >= s.maxQueue {
					rep.PerNF[n].Drops++
					s.drop[n][b]++
					dropped = true
					continue
				}
				start := t
				if s.free[n] > start {
					start = s.free[n]
				}
				start = s.skipOutage(n, start)
				svc := s.serviceTime(n, start)
				done := start + svc
				s.free[n] = done
				wait := start - t
				if s.retries > 0 {
					tmo := s.timeoutAt(n, t)
					if tmo > 0 && wait > tmo {
						r := int(wait / tmo)
						if r > s.retries {
							r = s.retries
						}
						rep.PerNF[n].Retries += r
						s.rtry[n][b] += r
						// Each re-send consumes one extra service slot.
						s.free[n] += float64(r) * svc
					}
				}
				q.push(done)
				if q.len() > rep.PerNF[n].PeakQueue {
					rep.PerNF[n].PeakQueue = q.len()
				}
				delay := done - t
				if delay > rep.PerNF[n].PeakDelaySec {
					rep.PerNF[n].PeakDelaySec = delay
				}
				if delay > latency {
					latency = delay
				}
				rep.PerNF[n].Transactions++
				s.arr[n][b]++
				doneMs := cp.MillisFromSeconds(done)
				if db := int((doneMs - s.lo) / s.bin); db < s.bins {
					if db < 0 {
						db = 0
					}
					s.comp[n][db]++
				}
			}
		}
		if e.Type == cp.Attach {
			if dropped {
				rep.Attach.Dropped++
			} else {
				rep.Attach.Count[b]++
				attachSum[b] += latency
				if latency > rep.Attach.MaxSec[b] {
					rep.Attach.MaxSec[b] = latency
				}
			}
		}
	}
	for _, e := range tr.Events {
		for j < len(injected) && injected[j].Before(e) {
			process(injected[j], true)
			j++
		}
		process(e, false)
	}
	for ; j < len(injected); j++ {
		process(injected[j], true)
	}

	for n := 0; n < NumNFs; n++ {
		p := &rep.PerNF[n]
		p.NF = NF(n).String()
		p.Capacity = s.cap[n]
		p.QueueDepth = make([]int, s.bins)
		depth := 0
		for b := 0; b < s.bins; b++ {
			depth += s.arr[n][b] - s.comp[n][b]
			p.QueueDepth[b] = depth
		}
		p.DropSeries = s.drop[n]
		p.RetrySeries = s.rtry[n]
	}
	for b := 0; b < s.bins; b++ {
		if c := rep.Attach.Count[b]; c > 0 {
			rep.Attach.MeanSec[b] = attachSum[b] / float64(c)
		}
	}
	return rep, nil
}
