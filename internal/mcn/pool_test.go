package mcn

import (
	"math"
	"testing"

	"cptraffic/internal/cp"
	"cptraffic/internal/sm"
	"cptraffic/internal/trace"
	"cptraffic/internal/world"
)

func TestPoolValidation(t *testing.T) {
	if _, err := NewPool(0, sm.LTE2Level()); err == nil {
		t.Fatal("zero-instance pool accepted")
	}
	p, err := NewPool(4, sm.LTE2Level())
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != 4 {
		t.Fatalf("Size = %d", p.Size())
	}
}

func TestPoolShardingIsStablePerUE(t *testing.T) {
	p, err := NewPool(5, sm.LTE2Level())
	if err != nil {
		t.Fatal(err)
	}
	for ue := uint32(0); ue < 100; ue++ {
		a := p.shard(ue)
		if a != p.shard(ue) {
			t.Fatal("shard not stable")
		}
		if a < 0 || a >= 5 {
			t.Fatalf("shard out of range: %d", a)
		}
	}
	// All instances get some UEs.
	seen := map[int]bool{}
	for ue := uint32(0); ue < 1000; ue++ {
		seen[p.shard(ue)] = true
	}
	if len(seen) != 5 {
		t.Fatalf("only %d instances used", len(seen))
	}
}

func TestPoolProcessTraceBalance(t *testing.T) {
	tr, err := world.Generate(world.Options{NumUEs: 600, Duration: 2 * cp.Hour, Seed: 71})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPool(4, sm.LTE2Level())
	if err != nil {
		t.Fatal(err)
	}
	st, err := p.ProcessTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	if st.Violations != 0 {
		t.Fatalf("violations = %d", st.Violations)
	}
	total := 0
	for _, inst := range st.PerInstance {
		total += inst.Processed
	}
	if total != tr.Len() {
		t.Fatalf("processed %d of %d", total, tr.Len())
	}
	// Totals are roughly balanced but not perfect — heavy-tailed UEs.
	if math.IsNaN(st.Imbalance) || st.Imbalance < 1 || st.Imbalance > 3 {
		t.Fatalf("imbalance = %v", st.Imbalance)
	}
	// Bursts concentrate at least as hard as totals.
	if st.PeakImbalance < st.Imbalance-0.3 {
		t.Fatalf("peak imbalance %v below total imbalance %v", st.PeakImbalance, st.Imbalance)
	}
}

func TestPoolEmptyTrace(t *testing.T) {
	p, err := NewPool(2, sm.LTE2Level())
	if err != nil {
		t.Fatal(err)
	}
	st, err := p.ProcessTrace(trace.New())
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(st.Imbalance) || !math.IsNaN(st.PeakImbalance) {
		t.Fatalf("empty-trace stats = %+v", st)
	}
}

func TestPoolSingleInstanceMatchesMME(t *testing.T) {
	tr, err := world.Generate(world.Options{NumUEs: 100, Duration: cp.Hour, Seed: 72})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPool(1, sm.LTE2Level())
	if err != nil {
		t.Fatal(err)
	}
	ps, err := p.ProcessTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	m := New(sm.LTE2Level())
	ms, err := m.ProcessTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	if ps.PerInstance[0] != ms {
		t.Fatalf("pool-of-1 stats %+v != single MME %+v", ps.PerInstance[0], ms)
	}
	if ps.Imbalance != 1 {
		t.Fatalf("single-instance imbalance = %v", ps.Imbalance)
	}
}
