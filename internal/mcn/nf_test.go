package mcn

import (
	"testing"

	"cptraffic/internal/cp"
	"cptraffic/internal/trace"
)

func TestTransactionsMatrix(t *testing.T) {
	// Attach fans out to every function.
	tx := Transactions(cp.Attach)
	for n := 0; n < NumNFs; n++ {
		if tx[n] != 1 {
			t.Fatalf("ATCH at %v = %d, want 1", NF(n), tx[n])
		}
	}
	// TAU touches only the MME.
	tau := Transactions(cp.TrackingAreaUpdate)
	if tau[NFMME] != 1 {
		t.Fatal("TAU must hit MME")
	}
	for _, n := range []NF{NFHSS, NFSGW, NFPGW, NFPCRF} {
		if tau[n] != 0 {
			t.Fatalf("TAU must not hit %v", n)
		}
	}
	// Invalid events cost nothing.
	if Transactions(cp.EventType(99)) != [NumNFs]int{} {
		t.Fatal("invalid event has transactions")
	}
}

func TestNFNames(t *testing.T) {
	want := []string{"MME", "HSS", "SGW", "PGW", "PCRF"}
	for i, w := range want {
		if NF(i).String() != w {
			t.Fatalf("NF(%d) = %q", i, NF(i).String())
		}
	}
	if NF(77).String() == "" {
		t.Fatal("out-of-range NF name empty")
	}
}

func TestNFLoad(t *testing.T) {
	tr := trace.New()
	tr.SetDevice(1, cp.Phone)
	tr.Append(ev(0, 1, cp.Attach))
	tr.Append(ev(1, 1, cp.ServiceRequest))
	tr.Append(ev(2, 1, cp.TrackingAreaUpdate))
	load := NFLoad(tr)
	if load[NFMME] != 3 {
		t.Fatalf("MME load = %d", load[NFMME])
	}
	if load[NFSGW] != 2 {
		t.Fatalf("SGW load = %d", load[NFSGW])
	}
	if load[NFHSS] != 1 || load[NFPCRF] != 1 {
		t.Fatalf("HSS/PCRF = %d/%d", load[NFHSS], load[NFPCRF])
	}
}

func TestNFLoadSeries(t *testing.T) {
	tr := trace.New()
	tr.SetDevice(1, cp.Phone)
	tr.Append(ev(0.1, 1, cp.ServiceRequest))
	tr.Append(ev(1.5, 1, cp.Handover))
	tr.Append(ev(1.9, 1, cp.TrackingAreaUpdate))
	s := NFLoadSeries(tr, cp.Second)
	if len(s[NFMME]) != 2 || s[NFMME][0] != 1 || s[NFMME][1] != 2 {
		t.Fatalf("MME series = %v", s[NFMME])
	}
	if s[NFSGW][1] != 1 {
		t.Fatalf("SGW series = %v", s[NFSGW])
	}
	empty := NFLoadSeries(trace.New(), cp.Second)
	if empty[NFMME] != nil {
		t.Fatal("empty trace should give nil series")
	}
	zero := NFLoadSeries(tr, 0)
	if zero[NFMME] != nil {
		t.Fatal("zero bin should give nil series")
	}
}
