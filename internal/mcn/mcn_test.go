package mcn

import (
	"testing"

	"cptraffic/internal/cp"
	"cptraffic/internal/sm"
	"cptraffic/internal/trace"
	"cptraffic/internal/world"
)

func ev(tSec float64, ue cp.UEID, e cp.EventType) trace.Event {
	return trace.Event{T: cp.MillisFromSeconds(tSec), UE: ue, Type: e}
}

func TestMMEHappyPath(t *testing.T) {
	m := New(sm.LTE2Level())
	seq := []trace.Event{
		ev(0, 1, cp.Attach),
		ev(1, 1, cp.Handover),
		ev(2, 1, cp.S1ConnRelease),
		ev(3, 1, cp.ServiceRequest),
		ev(4, 1, cp.Detach),
	}
	for _, e := range seq {
		if err := m.Process(e); err != nil {
			t.Fatal(err)
		}
	}
	s := m.Stats()
	if s.Violations != 0 {
		t.Fatalf("violations = %d", s.Violations)
	}
	if s.Processed != 5 || s.Transactions[cp.Handover] != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Registered != 0 || s.Connected != 0 {
		t.Fatalf("gauges = %+v", s)
	}
	if s.PeakConnected != 1 {
		t.Fatalf("peak = %d", s.PeakConnected)
	}
}

func TestMMEGauges(t *testing.T) {
	m := New(sm.LTE2Level())
	for ueID := 1; ueID <= 3; ueID++ {
		if err := m.Process(ev(float64(ueID), cp.UEID(ueID), cp.Attach)); err != nil {
			t.Fatal(err)
		}
	}
	s := m.Stats()
	if s.Registered != 3 || s.Connected != 3 || s.PeakConnected != 3 {
		t.Fatalf("gauges = %+v", s)
	}
	if err := m.Process(ev(10, 1, cp.S1ConnRelease)); err != nil {
		t.Fatal(err)
	}
	if got := m.Stats(); got.Connected != 2 || got.Registered != 3 {
		t.Fatalf("after release: %+v", got)
	}
}

func TestMMEViolationRecovery(t *testing.T) {
	m := New(sm.LTE2Level())
	if err := m.Process(ev(0, 1, cp.ServiceRequest)); err != nil {
		t.Fatal(err) // inferred: UE was IDLE
	}
	// SRV_REQ while already connected is a violation.
	if err := m.Process(ev(1, 1, cp.ServiceRequest)); err != nil {
		t.Fatal(err) // non-strict: recovered
	}
	if m.Stats().Violations != 1 {
		t.Fatalf("violations = %d", m.Stats().Violations)
	}
}

func TestMMEStrictMode(t *testing.T) {
	m := New(sm.LTE2Level())
	m.Strict = true
	if err := m.Process(ev(0, 1, cp.ServiceRequest)); err != nil {
		t.Fatal(err)
	}
	if err := m.Process(ev(1, 1, cp.ServiceRequest)); err == nil {
		t.Fatal("strict mode accepted violation")
	}
}

func TestMMEInfersMidStreamState(t *testing.T) {
	// A trace slice starting with S1_CONN_REL implies the UE was
	// connected; no violation.
	m := New(sm.LTE2Level())
	if err := m.Process(ev(0, 7, cp.S1ConnRelease)); err != nil {
		t.Fatal(err)
	}
	if m.Stats().Violations != 0 {
		t.Fatal("mid-stream inference failed")
	}
	if st, ok := m.State(7); !ok || st != sm.LTES1RelS1 {
		t.Fatalf("state = %v, %v", st, ok)
	}
}

func TestMMEProcessesWorldTraceCleanly(t *testing.T) {
	tr, err := world.Generate(world.Options{NumUEs: 150, Duration: 3 * cp.Hour, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	m := New(sm.LTE2Level())
	stats, err := m.ProcessTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Violations != 0 {
		t.Fatalf("world trace caused %d violations", stats.Violations)
	}
	if stats.Processed != tr.Len() {
		t.Fatalf("processed %d of %d", stats.Processed, tr.Len())
	}
	if stats.PeakConnected == 0 {
		t.Fatal("no UE ever connected")
	}
}

func TestMMEGaugesNeverNegative(t *testing.T) {
	// UEs admitted mid-stream in an inferred CONNECTED/registered state
	// must count toward the gauges, or releases drive them negative.
	m := New(sm.LTE2Level())
	for ueID := 1; ueID <= 50; ueID++ {
		// First event is a release: the UE was connected before the
		// window started.
		if err := m.Process(ev(float64(ueID), cp.UEID(ueID), cp.S1ConnRelease)); err != nil {
			t.Fatal(err)
		}
		s := m.Stats()
		if s.Connected < 0 || s.Registered < 0 {
			t.Fatalf("gauges negative after UE %d: %+v", ueID, s)
		}
	}
	if got := m.Stats(); got.Registered != 50 || got.Connected != 0 {
		t.Fatalf("stats = %+v", got)
	}
}

func TestLoadSeries(t *testing.T) {
	tr := trace.New()
	tr.SetDevice(1, cp.Phone)
	tr.Append(ev(0.5, 1, cp.ServiceRequest))
	tr.Append(ev(1.5, 1, cp.S1ConnRelease))
	tr.Append(ev(1.9, 1, cp.ServiceRequest))
	got := LoadSeries(tr, cp.Second)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("load = %v", got)
	}
	if LoadSeries(trace.New(), cp.Second) != nil {
		t.Fatal("empty trace should give nil")
	}
	if LoadSeries(tr, 0) != nil {
		t.Fatal("zero bin should give nil")
	}
}
