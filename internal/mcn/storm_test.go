package mcn

import (
	"bytes"
	"testing"

	"cptraffic/internal/cp"
	"cptraffic/internal/trace"
)

// stormTrace builds a sorted trace of n UEs emitting one SRV_REQ per
// second each, round-robin, over the given number of seconds.
func stormTrace(t *testing.T, ues, seconds int) *trace.Trace {
	t.Helper()
	tr := trace.New()
	for i := 0; i < ues; i++ {
		if err := tr.SetDevice(cp.UEID(i), cp.Phone); err != nil {
			t.Fatal(err)
		}
	}
	for s := 0; s < seconds; s++ {
		tr.Append(trace.Event{
			T:    cp.Millis(s) * cp.Second,
			UE:   cp.UEID(s % ues),
			Type: cp.ServiceRequest,
		})
	}
	tr.Sort()
	return tr
}

// uniformCapacity returns an explicit capacity so no derivation runs.
func uniformCapacity(rate float64) Capacity {
	var c Capacity
	for n := range c {
		c[n] = rate
	}
	return c
}

func TestFaultValidation(t *testing.T) {
	bad := []Fault{
		{Kind: FaultKind(99), Duration: cp.Minute},
		{Kind: FaultSlowdown, NF: NFMME, Duration: 0, Factor: 2},
		{Kind: FaultSlowdown, NF: NFMME, Start: -1, Duration: cp.Minute, Factor: 2},
		{Kind: FaultSlowdown, NF: NFMME, Duration: cp.Minute, Factor: 1},
		{Kind: FaultSlowdown, NF: NF(200), Duration: cp.Minute, Factor: 2},
		{Kind: FaultRetryStorm, NF: NFSGW, Duration: cp.Minute, Factor: 0.5},
		{Kind: FaultOutage, NF: NF(200), Duration: cp.Minute},
		{Kind: FaultMassReattach, Duration: cp.Minute, Fraction: 0},
		{Kind: FaultMassReattach, Duration: cp.Minute, Fraction: 1.5},
	}
	for i, f := range bad {
		if err := f.Validate(); err == nil {
			t.Errorf("fault %d (%+v): expected validation error", i, f)
		}
	}
	good := []Fault{
		{Kind: FaultSlowdown, NF: NFMME, Start: cp.Minute, Duration: cp.Minute, Factor: 4},
		{Kind: FaultOutage, NF: NFSGW, Duration: cp.Minute},
		{Kind: FaultRetryStorm, NF: NFHSS, Duration: cp.Minute, Factor: 5},
		{Kind: FaultMassReattach, Duration: cp.Minute, Fraction: 0.5},
	}
	if err := ValidateSchedule(good); err != nil {
		t.Fatalf("good schedule rejected: %v", err)
	}
}

func TestFaultKindRoundTrip(t *testing.T) {
	for k := FaultKind(0); int(k) < NumFaultKinds; k++ {
		got, err := ParseFaultKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseFaultKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseFaultKind("nope"); err == nil {
		t.Error("ParseFaultKind accepted garbage")
	}
	for n := 0; n < NumNFs; n++ {
		got, err := ParseNF(NF(n).String())
		if err != nil || got != NF(n) {
			t.Errorf("ParseNF(%q) = %v, %v", NF(n).String(), got, err)
		}
	}
	if _, err := ParseNF("XYZ"); err == nil {
		t.Error("ParseNF accepted garbage")
	}
}

func TestStormHealthyBaseline(t *testing.T) {
	tr := stormTrace(t, 10, 600)
	rep, err := ReplayStorm(tr, StormConfig{Capacity: uniformCapacity(10), Bin: 10 * cp.Second})
	if err != nil {
		t.Fatal(err)
	}
	mme := rep.PerNF[NFMME]
	if mme.Transactions != 600 {
		t.Errorf("MME transactions = %d, want 600", mme.Transactions)
	}
	if mme.Drops != 0 || mme.Retries != 0 {
		t.Errorf("healthy replay has drops=%d retries=%d", mme.Drops, mme.Retries)
	}
	// 1 tx/s offered against 10 tx/s capacity: the queue never builds.
	if mme.PeakQueue > 1 {
		t.Errorf("healthy peak queue = %d, want <= 1", mme.PeakQueue)
	}
	// SRV_REQ does not touch HSS/PGW/PCRF.
	for _, n := range []NF{NFHSS, NFPGW, NFPCRF} {
		if rep.PerNF[n].Transactions != 0 {
			t.Errorf("%v transactions = %d, want 0", n, rep.PerNF[n].Transactions)
		}
	}
}

func TestStormOutageBacklogAndRecovery(t *testing.T) {
	tr := stormTrace(t, 10, 600)
	cfg := StormConfig{
		Capacity: uniformCapacity(10),
		Bin:      10 * cp.Second,
		Faults: []Fault{{
			Kind: FaultOutage, NF: NFMME,
			Start: 100 * cp.Second, Duration: 100 * cp.Second,
		}},
	}
	rep, err := ReplayStorm(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mme := rep.PerNF[NFMME]
	// ~100 arrivals during the outage must pile up...
	if mme.PeakQueue < 90 {
		t.Errorf("outage peak queue = %d, want >= 90", mme.PeakQueue)
	}
	if mme.PeakDelaySec < 50 {
		t.Errorf("outage peak delay = %.1f s, want >= 50", mme.PeakDelaySec)
	}
	// ...be visible in the depth series during the window...
	outageBin := int(150 * cp.Second / (10 * cp.Second))
	if mme.QueueDepth[outageBin] < 40 {
		t.Errorf("queue depth mid-outage = %d, want >= 40", mme.QueueDepth[outageBin])
	}
	// ...and fully drain by the end (10 tx/s capacity vs 1 tx/s load).
	if last := mme.QueueDepth[len(mme.QueueDepth)-1]; last > 1 {
		t.Errorf("queue depth at end = %d, want drained", last)
	}
	// The SGW shares the SRV_REQ call flow but was healthy throughout.
	if sgw := rep.PerNF[NFSGW]; sgw.PeakQueue > 1 {
		t.Errorf("SGW peak queue = %d, want <= 1", sgw.PeakQueue)
	}
}

func TestStormQueueBoundDrops(t *testing.T) {
	tr := stormTrace(t, 10, 600)
	cfg := StormConfig{
		Capacity: uniformCapacity(10),
		MaxQueue: 20,
		Bin:      10 * cp.Second,
		Faults: []Fault{{
			Kind: FaultOutage, NF: NFMME,
			Start: 100 * cp.Second, Duration: 200 * cp.Second,
		}},
	}
	rep, err := ReplayStorm(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mme := rep.PerNF[NFMME]
	if mme.Drops == 0 {
		t.Fatal("bounded queue under a 200 s outage produced no drops")
	}
	if mme.PeakQueue > 20 {
		t.Errorf("peak queue %d exceeds the bound 20", mme.PeakQueue)
	}
	var seriesTotal int
	for _, d := range mme.DropSeries {
		seriesTotal += d
	}
	if seriesTotal != mme.Drops {
		t.Errorf("drop series sums to %d, total says %d", seriesTotal, mme.Drops)
	}
}

func TestStormRetryAmplification(t *testing.T) {
	// Five simultaneous SRV_REQs per second against 5 tx/s capacity:
	// intra-batch waits reach 0.8 s — under the default 1 s timeout, so
	// the healthy system never retries. A retry storm dividing the
	// timeout by 10 turns those marginal waits into re-send bursts.
	tr := trace.New()
	for i := 0; i < 5; i++ {
		if err := tr.SetDevice(cp.UEID(i), cp.Phone); err != nil {
			t.Fatal(err)
		}
	}
	for s := 0; s < 300; s++ {
		for i := 0; i < 5; i++ {
			tr.Append(trace.Event{T: cp.Millis(s) * cp.Second, UE: cp.UEID(i), Type: cp.ServiceRequest})
		}
	}
	tr.Sort()
	base, err := ReplayStorm(tr, StormConfig{
		Capacity: uniformCapacity(5), Bin: 10 * cp.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if base.PerNF[NFMME].Retries != 0 {
		t.Fatalf("healthy replay retried %d times, want 0", base.PerNF[NFMME].Retries)
	}
	stormed, err := ReplayStorm(tr, StormConfig{
		Capacity: uniformCapacity(5), Bin: 10 * cp.Second,
		Faults: []Fault{{
			Kind: FaultRetryStorm, NF: NFMME,
			Start: 100 * cp.Second, Duration: 100 * cp.Second, Factor: 10,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if stormed.PerNF[NFMME].Retries == 0 {
		t.Error("retry storm produced no retries")
	}
	if stormed.PerNF[NFMME].PeakDelaySec <= base.PerNF[NFMME].PeakDelaySec {
		t.Errorf("retry storm did not raise peak delay: %.2f vs %.2f",
			stormed.PerNF[NFMME].PeakDelaySec, base.PerNF[NFMME].PeakDelaySec)
	}
	// The storm is confined to the MME; the SGW leg of the call flow
	// keeps its healthy retry count.
	if stormed.PerNF[NFSGW].Retries != 0 {
		t.Errorf("SGW retried %d times under an MME-only storm", stormed.PerNF[NFSGW].Retries)
	}
}

func TestStormMassReattach(t *testing.T) {
	tr := stormTrace(t, 100, 600)
	rep, err := ReplayStorm(tr, StormConfig{
		Capacity: uniformCapacity(50),
		Bin:      10 * cp.Second,
		Faults: []Fault{{
			Kind: FaultMassReattach, Fraction: 0.5,
			Start: 300 * cp.Second, Duration: 60 * cp.Second,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.InjectedAttaches != 50 {
		t.Errorf("injected attaches = %d, want 50", rep.InjectedAttaches)
	}
	// Attaches fan out to every NF, so the HSS — idle in the healthy
	// trace — sees exactly the wave.
	if hss := rep.PerNF[NFHSS].Transactions; hss != 50 {
		t.Errorf("HSS transactions = %d, want 50", hss)
	}
	var attaches int
	for _, c := range rep.Attach.Count {
		attaches += c
	}
	if attaches+rep.Attach.Dropped != 50 {
		t.Errorf("attach latency series counts %d (+%d dropped), want 50",
			attaches, rep.Attach.Dropped)
	}
}

func TestStormSAShareFiltersTAU(t *testing.T) {
	tr := trace.New()
	for i := 0; i < 10; i++ {
		if err := tr.SetDevice(cp.UEID(i), cp.Phone); err != nil {
			t.Fatal(err)
		}
	}
	for s := 0; s < 100; s++ {
		typ := cp.ServiceRequest
		if s%2 == 1 {
			typ = cp.TrackingAreaUpdate
		}
		tr.Append(trace.Event{T: cp.Millis(s) * cp.Second, UE: cp.UEID(s % 10), Type: typ})
	}
	tr.Sort()
	all, err := ReplayStorm(tr, StormConfig{Capacity: uniformCapacity(10), SAShare: 1})
	if err != nil {
		t.Fatal(err)
	}
	if all.FilteredTAUs != 50 {
		t.Errorf("SAShare=1 filtered %d TAUs, want 50", all.FilteredTAUs)
	}
	if all.Events != 50 {
		t.Errorf("SAShare=1 processed %d events, want 50", all.Events)
	}
	none, err := ReplayStorm(tr, StormConfig{Capacity: uniformCapacity(10), SAShare: 0})
	if err != nil {
		t.Fatal(err)
	}
	if none.FilteredTAUs != 0 || none.Events != 100 {
		t.Errorf("SAShare=0 filtered %d, processed %d; want 0, 100",
			none.FilteredTAUs, none.Events)
	}
}

func TestStormReportDeterministic(t *testing.T) {
	tr := stormTrace(t, 50, 600)
	cfg := StormConfig{
		Bin: 10 * cp.Second,
		Faults: []Fault{
			{Kind: FaultOutage, NF: NFMME, Start: 100 * cp.Second, Duration: 60 * cp.Second},
			{Kind: FaultRetryStorm, NF: NFMME, Start: 100 * cp.Second, Duration: 120 * cp.Second, Factor: 5},
			{Kind: FaultMassReattach, Fraction: 0.3, Start: 160 * cp.Second, Duration: 30 * cp.Second},
		},
	}
	var a, b bytes.Buffer
	repA, err := ReplayStorm(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := repA.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	repB, err := ReplayStorm(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := repB.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("identical replays produced different report bytes")
	}
}

func TestStormRejectsBadInput(t *testing.T) {
	if _, err := ReplayStorm(trace.New(), StormConfig{}); err == nil {
		t.Error("empty trace accepted")
	}
	tr := stormTrace(t, 2, 10)
	if _, err := ReplayStorm(tr, StormConfig{SAShare: 2}); err == nil {
		t.Error("SAShare > 1 accepted")
	}
	if _, err := ReplayStorm(tr, StormConfig{
		Faults: []Fault{{Kind: FaultSlowdown, NF: NFMME, Duration: cp.Minute, Factor: 0.5}},
	}); err == nil {
		t.Error("invalid schedule accepted")
	}
}
