package mcn

import (
	"fmt"

	"cptraffic/internal/cp"
	"cptraffic/internal/trace"
)

// NF enumerates the EPC network functions of the control plane (paper
// §2.1). Each UE-facing control event fans out into transactions at a
// subset of them, following the standard EPS call flows — the per-NF
// load model of Dababneh et al. that the paper discusses as prior work.
type NF uint8

const (
	// MME is the Mobility Management Entity, the main signaling anchor.
	NFMME NF = iota
	// HSS is the Home Subscriber Server.
	NFHSS
	// SGW is the Serving Gateway (control part).
	NFSGW
	// PGW is the Packet Data Network Gateway (control part).
	NFPGW
	// PCRF is the Policy and Charging Rules Function.
	NFPCRF

	numNFs = iota
)

// NumNFs is the number of modeled network functions.
const NumNFs = int(numNFs)

var nfNames = [NumNFs]string{"MME", "HSS", "SGW", "PGW", "PCRF"}

// String returns the standard 3GPP abbreviation.
func (n NF) String() string {
	if int(n) < len(nfNames) {
		return nfNames[n]
	}
	return fmt.Sprintf("NF(%d)", uint8(n))
}

// transactionMatrix gives the number of control transactions each event
// type causes at each network function, per the EPS call flows:
//
//	ATCH    attach: MME processing, HSS update-location, session
//	        establishment through SGW/PGW, PCRF policy binding
//	DTCH    detach: the reverse teardown
//	SRV_REQ service request: MME + SGW modify-bearer
//	S1_REL  S1 release: MME + SGW release-access-bearers
//	HO      X2 handover with SGW path switch: MME + SGW
//	TAU     tracking area update without SGW change: MME only
var transactionMatrix = [cp.NumEventTypes][NumNFs]int{
	cp.Attach:             {NFMME: 1, NFHSS: 1, NFSGW: 1, NFPGW: 1, NFPCRF: 1},
	cp.Detach:             {NFMME: 1, NFHSS: 1, NFSGW: 1, NFPGW: 1, NFPCRF: 1},
	cp.ServiceRequest:     {NFMME: 1, NFSGW: 1},
	cp.S1ConnRelease:      {NFMME: 1, NFSGW: 1},
	cp.Handover:           {NFMME: 1, NFSGW: 1},
	cp.TrackingAreaUpdate: {NFMME: 1},
}

// Transactions returns the per-NF transaction counts of a single event.
func Transactions(e cp.EventType) [NumNFs]int {
	if !e.Valid() {
		return [NumNFs]int{}
	}
	return transactionMatrix[e]
}

// NFLoad aggregates the per-network-function transaction counts a trace
// imposes on the core — the quantity an MCN dimensioning study sizes
// each function by.
func NFLoad(tr *trace.Trace) [NumNFs]int {
	var out [NumNFs]int
	for _, ev := range tr.Events {
		tx := Transactions(ev.Type)
		for n := 0; n < NumNFs; n++ {
			out[n] += tx[n]
		}
	}
	return out
}

// NFLoadSeries bins a trace's per-NF transactions into fixed windows,
// returning one series per network function.
func NFLoadSeries(tr *trace.Trace, bin cp.Millis) [NumNFs][]int {
	var out [NumNFs][]int
	if bin <= 0 || tr.Len() == 0 {
		return out
	}
	lo, hi := tr.Span()
	nBins := int((hi - lo + bin - 1) / bin)
	for n := 0; n < NumNFs; n++ {
		out[n] = make([]int, nBins)
	}
	for _, ev := range tr.Events {
		b := (ev.T - lo) / bin
		tx := Transactions(ev.Type)
		for n := 0; n < NumNFs; n++ {
			out[n][b] += tx[n]
		}
	}
	return out
}
