// Package mcn implements a small mobile-core-network control-plane
// simulator: an MME (4G) or AMF (5G) that consumes a control-plane trace
// event by event, tracks every UE's protocol state, tallies transaction
// counts and signaling load, and flags protocol violations.
//
// It is the "driven system" for the use cases of paper §3.1 — evaluating
// core designs and monitoring schemes under realistic control workload —
// and doubles as an independent conformance checker for generated traces.
package mcn

import (
	"fmt"

	"cptraffic/internal/cp"
	"cptraffic/internal/sm"
	"cptraffic/internal/trace"
)

// Stats aggregates what the core observed while processing a trace.
type Stats struct {
	// Transactions counts processed events by type.
	Transactions [cp.NumEventTypes]int
	// Violations counts events that were illegal in the UE's state.
	Violations int
	// Registered and Connected are the current population gauges.
	Registered int
	Connected  int
	// PeakConnected is the high-water mark of simultaneously connected
	// UEs.
	PeakConnected int
	// Processed is the total number of events consumed.
	Processed int
}

// Total returns the total transaction count.
func (s *Stats) Total() int { return s.Processed }

// MME is the control-plane core simulator. The zero value is not usable;
// call New.
type MME struct {
	machine *sm.Machine
	state   map[cp.UEID]sm.State
	stats   Stats
	// Strict makes Process return an error on protocol violations
	// instead of recovering via the event's canonical post-state.
	Strict bool
}

// New returns an MME enforcing the given state machine (use
// sm.LTE2Level() for 4G/5G NSA, sm.FiveGSA() for 5G SA).
func New(machine *sm.Machine) *MME {
	return &MME{
		machine: machine,
		state:   make(map[cp.UEID]sm.State),
	}
}

// Process consumes one control event. Unknown UEs are admitted in the
// machine's initial (deregistered) state, except that the state of a UE
// first seen mid-stream is inferred from its first event so replays of
// trace slices do not storm the violation counter.
func (m *MME) Process(e trace.Event) error {
	cur, ok := m.state[e.UE]
	if !ok {
		cur = sm.InferInitial(m.machine, []trace.Event{{T: e.T, UE: e.UE, Type: e.Type}})
		// Admit the UE in its inferred state so the population gauges
		// stay balanced when it later releases or detaches.
		if m.machine.Top(cur).Registered() {
			m.stats.Registered++
		}
		if m.machine.Top(cur) == cp.StateConnected {
			m.stats.Connected++
			if m.stats.Connected > m.stats.PeakConnected {
				m.stats.PeakConnected = m.stats.Connected
			}
		}
	}
	wasRegistered := m.machine.Top(cur).Registered()
	wasConnected := m.machine.Top(cur) == cp.StateConnected

	next, legal := m.machine.Next(cur, e.Type)
	if !legal {
		m.stats.Violations++
		if m.Strict {
			return fmt.Errorf("mcn: UE %d: %s illegal in state %s",
				e.UE, e.Type, m.machine.StateName(cur))
		}
		next = m.machine.Forced(e.Type)
	}
	m.state[e.UE] = next
	m.stats.Processed++
	if e.Type.Valid() {
		m.stats.Transactions[e.Type]++
	}

	isRegistered := m.machine.Top(next).Registered()
	isConnected := m.machine.Top(next) == cp.StateConnected
	if isRegistered && !wasRegistered {
		m.stats.Registered++
	}
	if !isRegistered && wasRegistered {
		m.stats.Registered--
	}
	if isConnected && !wasConnected {
		m.stats.Connected++
		if m.stats.Connected > m.stats.PeakConnected {
			m.stats.PeakConnected = m.stats.Connected
		}
	}
	if !isConnected && wasConnected {
		m.stats.Connected--
	}
	return nil
}

// ProcessTrace consumes a whole (sorted) trace and returns the final
// stats. In Strict mode it stops at the first violation.
func (m *MME) ProcessTrace(tr *trace.Trace) (Stats, error) {
	for _, e := range tr.Events {
		if err := m.Process(e); err != nil {
			return m.stats, err
		}
	}
	return m.stats, nil
}

// Stats returns a snapshot of the current counters.
func (m *MME) Stats() Stats { return m.stats }

// State returns the tracked state of a UE and whether it has been seen.
func (m *MME) State(ue cp.UEID) (sm.State, bool) {
	s, ok := m.state[ue]
	return s, ok
}

// LoadSeries bins a trace's events into fixed windows and returns the
// transaction count per window — the signaling load profile a core
// design or a monitoring scheme would see.
func LoadSeries(tr *trace.Trace, bin cp.Millis) []int {
	if bin <= 0 || tr.Len() == 0 {
		return nil
	}
	lo, hi := tr.Span()
	n := int((hi - lo + bin - 1) / bin)
	out := make([]int, n)
	for _, e := range tr.Events {
		out[(e.T-lo)/bin]++
	}
	return out
}
