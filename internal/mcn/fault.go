package mcn

import (
	"fmt"

	"cptraffic/internal/cp"
)

// FaultKind enumerates the injectable control-plane fault classes of the
// signaling-storm suite. Each models a failure mode carriers dimension
// against (the inverse of paper §3.1's healthy-core sizing question):
// degraded NF capacity, total NF loss, aggressive client retries, and
// synchronized re-registration waves.
type FaultKind uint8

const (
	// FaultSlowdown divides one NF's service rate by Factor for the
	// window: an overloaded or degraded function (GC pauses, a failed
	// instance out of a pool, a database hot spot).
	FaultSlowdown FaultKind = iota
	// FaultOutage sets one NF's service rate to zero for the window.
	// Arriving transactions queue (up to the storm config's queue bound,
	// then drop) and drain when the window ends — the recovery avalanche.
	FaultOutage
	// FaultRetryStorm divides the client retry timeout at one NF by
	// Factor for the window: impatient re-sends that multiply offered
	// load exactly when the function is slowest, the classic signaling
	// storm amplifier.
	FaultRetryStorm
	// FaultMassReattach injects Fraction of the UE population as a wave
	// of extra ATCH events spread uniformly over the window: a regional
	// radio outage healing, a stadium emptying, or an IoT fleet waking
	// for a synchronized firmware check-in.
	FaultMassReattach

	numFaultKinds = iota
)

// NumFaultKinds is the number of fault classes.
const NumFaultKinds = int(numFaultKinds)

var faultKindNames = [NumFaultKinds]string{
	"slowdown", "outage", "retry_storm", "mass_reattach",
}

// String returns the scenario-file spelling of the kind.
func (k FaultKind) String() string {
	if int(k) < len(faultKindNames) {
		return faultKindNames[k]
	}
	return fmt.Sprintf("FaultKind(%d)", uint8(k))
}

// ParseFaultKind parses the scenario-file spelling produced by String.
func ParseFaultKind(s string) (FaultKind, error) {
	for i, n := range faultKindNames {
		if n == s {
			return FaultKind(i), nil
		}
	}
	return 0, fmt.Errorf("mcn: unknown fault kind %q", s)
}

// ParseNF parses the 3GPP abbreviation produced by NF.String.
func ParseNF(s string) (NF, error) {
	for i, n := range nfNames {
		if n == s {
			return NF(i), nil
		}
	}
	return 0, fmt.Errorf("mcn: unknown network function %q", s)
}

// Fault is one timed fault-schedule entry. Times are absolute trace
// time (the same clock as trace.Event.T), so a schedule travels with
// the trace window it was written for.
type Fault struct {
	Kind FaultKind
	// NF is the targeted function for slowdown / outage / retry_storm;
	// it is ignored by mass_reattach (which hits the whole core through
	// the attach call flow).
	NF NF
	// Start and Duration bound the fault window [Start, Start+Duration).
	Start    cp.Millis
	Duration cp.Millis
	// Factor is the slowdown service-rate divisor or the retry_storm
	// timeout divisor (> 1 makes things worse). Unused by outage and
	// mass_reattach.
	Factor float64
	// Fraction is the share of the UE population that re-attaches in a
	// mass_reattach window. Unused by the other kinds.
	Fraction float64
}

// End returns the exclusive end of the fault window.
func (f Fault) End() cp.Millis { return f.Start + f.Duration }

// active reports whether t falls inside the fault window.
func (f Fault) active(t cp.Millis) bool { return t >= f.Start && t < f.End() }

// Validate checks one schedule entry.
func (f Fault) Validate() error {
	if int(f.Kind) >= NumFaultKinds {
		return fmt.Errorf("mcn: invalid fault kind %d", f.Kind)
	}
	if f.Duration <= 0 {
		return fmt.Errorf("mcn: %s fault needs a positive duration", f.Kind)
	}
	if f.Start < 0 {
		return fmt.Errorf("mcn: %s fault starts before the trace epoch", f.Kind)
	}
	switch f.Kind {
	case FaultSlowdown, FaultRetryStorm:
		if int(f.NF) >= NumNFs {
			return fmt.Errorf("mcn: %s fault targets invalid NF %d", f.Kind, f.NF)
		}
		if f.Factor <= 1 {
			return fmt.Errorf("mcn: %s fault needs factor > 1 (got %g)", f.Kind, f.Factor)
		}
	case FaultOutage:
		if int(f.NF) >= NumNFs {
			return fmt.Errorf("mcn: %s fault targets invalid NF %d", f.Kind, f.NF)
		}
	case FaultMassReattach:
		if f.Fraction <= 0 || f.Fraction > 1 {
			return fmt.Errorf("mcn: mass_reattach fraction must be in (0, 1] (got %g)", f.Fraction)
		}
	default:
		return fmt.Errorf("mcn: invalid fault kind %d", f.Kind)
	}
	return nil
}

// ValidateSchedule checks every entry of a fault schedule.
func ValidateSchedule(faults []Fault) error {
	for i, f := range faults {
		if err := f.Validate(); err != nil {
			return fmt.Errorf("fault %d: %w", i, err)
		}
	}
	return nil
}
