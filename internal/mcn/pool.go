package mcn

import (
	"fmt"
	"math"

	"cptraffic/internal/cp"
	"cptraffic/internal/sm"
	"cptraffic/internal/trace"
)

// Pool models a horizontally scaled control plane: N MME instances with
// UE-affinity sharding (every UE's signaling must stay on one instance,
// as 3GPP's UE-association requires). It answers the scalability
// question the paper's generator exists for: how evenly does realistic
// — bursty, heavy-tailed, diurnal — per-UE traffic spread across
// instances, compared to the uniform-traffic assumption?
type Pool struct {
	instances []*MME
}

// NewPool creates n MME instances enforcing the given machine.
func NewPool(n int, machine *sm.Machine) (*Pool, error) {
	if n <= 0 {
		return nil, fmt.Errorf("mcn: pool needs at least one instance")
	}
	p := &Pool{instances: make([]*MME, n)}
	for i := range p.instances {
		p.instances[i] = New(machine)
	}
	return p, nil
}

// Size returns the number of instances.
func (p *Pool) Size() int { return len(p.instances) }

// shard maps a UE to its instance with a multiplicative hash, so
// consecutive UE ids do not land on the same instance.
func (p *Pool) shard(ue uint32) int {
	h := uint64(ue) * 0x9E3779B97F4A7C15
	return int(h % uint64(len(p.instances)))
}

// Process routes one event to its UE's instance.
func (p *Pool) Process(e trace.Event) error {
	return p.instances[p.shard(uint32(e.UE))].Process(e)
}

// PoolStats summarizes a pool run.
type PoolStats struct {
	// PerInstance holds each instance's final stats.
	PerInstance []Stats
	// Imbalance is max/mean of per-instance processed events (1.0 =
	// perfectly even).
	Imbalance float64
	// PeakImbalance is the same ratio over the busiest 1-minute window
	// of each instance — bursts concentrate harder than totals.
	PeakImbalance float64
	// Violations totals protocol violations across instances.
	Violations int
}

// ProcessTrace drives a whole (sorted) trace through the pool and
// computes balance statistics.
func (p *Pool) ProcessTrace(tr *trace.Trace) (PoolStats, error) {
	n := len(p.instances)
	lo, hi := tr.Span()
	bins := int((hi-lo)/cp.Minute) + 1
	perMinute := make([][]int, n)
	for i := range perMinute {
		perMinute[i] = make([]int, bins)
	}
	for _, e := range tr.Events {
		i := p.shard(uint32(e.UE))
		if err := p.instances[i].Process(e); err != nil {
			return PoolStats{}, err
		}
		perMinute[i][(e.T-lo)/cp.Minute]++
	}
	out := PoolStats{PerInstance: make([]Stats, n)}
	var total, maxTotal float64
	var peakMax, peakSum float64
	for i, m := range p.instances {
		st := m.Stats()
		out.PerInstance[i] = st
		out.Violations += st.Violations
		total += float64(st.Processed)
		if float64(st.Processed) > maxTotal {
			maxTotal = float64(st.Processed)
		}
		instPeak := 0
		for _, c := range perMinute[i] {
			if c > instPeak {
				instPeak = c
			}
		}
		peakSum += float64(instPeak)
		if float64(instPeak) > peakMax {
			peakMax = float64(instPeak)
		}
	}
	if total > 0 {
		out.Imbalance = maxTotal / (total / float64(n))
	} else {
		out.Imbalance = math.NaN()
	}
	if peakSum > 0 {
		out.PeakImbalance = peakMax / (peakSum / float64(n))
	} else {
		out.PeakImbalance = math.NaN()
	}
	return out, nil
}
