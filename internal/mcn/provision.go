package mcn

import (
	"fmt"
	"math"
	"sort"

	"cptraffic/internal/stats"
	"cptraffic/internal/trace"
)

// Capacity assigns each network function a service rate in transactions
// per second.
type Capacity [NumNFs]float64

// NFReport summarizes one network function's behavior under a trace.
type NFReport struct {
	Transactions int
	// Utilization is offered load over capacity (can exceed 1 when the
	// function is under-provisioned).
	Utilization float64
	// Queueing delay of transactions through the FIFO server, seconds.
	MeanDelay float64
	P99Delay  float64
	MaxDelay  float64
}

// ProvisionReport is the result of replaying a trace through the core's
// network functions.
type ProvisionReport struct {
	PerNF [NumNFs]NFReport
	// Span is the trace duration in seconds the rates are relative to.
	Span float64
}

// Provision replays a (sorted) trace through a FIFO queueing model of
// the five network functions: every control event fans out into
// transactions (see Transactions), each NF serves them one at a time at
// its capacity rate. The report gives per-NF utilization and queueing
// delays — the numbers an MCN dimensioning study provisions against
// (§3.1's "evaluating the scalability of MCN design").
func Provision(tr *trace.Trace, cap Capacity) (ProvisionReport, error) {
	for n, c := range cap {
		if c <= 0 {
			return ProvisionReport{}, fmt.Errorf("mcn: capacity of %v must be positive", NF(n))
		}
	}
	if !tr.Sorted() {
		return ProvisionReport{}, fmt.Errorf("mcn: Provision needs a sorted trace")
	}
	var rep ProvisionReport
	lo, hi := tr.Span()
	rep.Span = (hi - lo).Seconds()

	var free [NumNFs]float64 // time each server becomes free
	delays := make([][]float64, NumNFs)
	for _, ev := range tr.Events {
		t := ev.T.Seconds()
		tx := Transactions(ev.Type)
		for n := 0; n < NumNFs; n++ {
			for k := 0; k < tx[n]; k++ {
				start := math.Max(t, free[n])
				free[n] = start + 1/cap[n]
				delays[n] = append(delays[n], start-t)
				rep.PerNF[n].Transactions++
			}
		}
	}
	for n := 0; n < NumNFs; n++ {
		if rep.Span > 0 {
			offered := float64(rep.PerNF[n].Transactions) / rep.Span
			rep.PerNF[n].Utilization = offered / cap[n]
		}
		if len(delays[n]) == 0 {
			continue
		}
		rep.PerNF[n].MeanDelay = stats.Mean(delays[n])
		sort.Float64s(delays[n])
		rep.PerNF[n].P99Delay = delays[n][int(0.99*float64(len(delays[n])-1))]
		rep.PerNF[n].MaxDelay = delays[n][len(delays[n])-1]
	}
	return rep, nil
}

// SuggestCapacity finds, per network function, the smallest service rate
// (within 1%) whose 99th-percentile queueing delay under the trace stays
// at or below targetP99 seconds. This is the dimensioning question the
// traffic generator exists to answer: "how big must each function be for
// this population?"
func SuggestCapacity(tr *trace.Trace, targetP99 float64) (Capacity, error) {
	if targetP99 <= 0 {
		return Capacity{}, fmt.Errorf("mcn: targetP99 must be positive")
	}
	if tr.Len() == 0 {
		return Capacity{}, fmt.Errorf("mcn: empty trace")
	}
	if !tr.Sorted() {
		return Capacity{}, fmt.Errorf("mcn: SuggestCapacity needs a sorted trace")
	}
	lo, hi := tr.Span()
	span := (hi - lo).Seconds()
	if span <= 0 {
		return Capacity{}, fmt.Errorf("mcn: degenerate trace span")
	}

	// Pre-extract each NF's arrival times once.
	arrivals := make([][]float64, NumNFs)
	for _, ev := range tr.Events {
		t := ev.T.Seconds()
		tx := Transactions(ev.Type)
		for n := 0; n < NumNFs; n++ {
			for k := 0; k < tx[n]; k++ {
				arrivals[n] = append(arrivals[n], t)
			}
		}
	}

	var out Capacity
	for n := 0; n < NumNFs; n++ {
		if len(arrivals[n]) == 0 {
			out[n] = 1 // nothing arrives; any positive rate works
			continue
		}
		offered := float64(len(arrivals[n])) / span
		loRate, hiRate := offered, offered*1000
		// Ensure the upper bracket actually meets the target.
		for p99At(arrivals[n], hiRate) > targetP99 {
			hiRate *= 10
			if hiRate > offered*1e9 {
				break
			}
		}
		for hiRate/loRate > 1.01 {
			mid := math.Sqrt(loRate * hiRate)
			if p99At(arrivals[n], mid) <= targetP99 {
				hiRate = mid
			} else {
				loRate = mid
			}
		}
		out[n] = hiRate
	}
	return out, nil
}

// p99At computes the p99 FIFO queueing delay for arrivals served at rate.
func p99At(arrivals []float64, rate float64) float64 {
	service := 1 / rate
	free := 0.0
	delays := make([]float64, len(arrivals))
	for i, t := range arrivals {
		start := math.Max(t, free)
		free = start + service
		delays[i] = start - t
	}
	sort.Float64s(delays)
	return delays[int(0.99*float64(len(delays)-1))]
}
