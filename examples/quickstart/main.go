// Quickstart: the full pipeline in one program — simulate a ground-truth
// world, fit the paper's two-level semi-Markov model, synthesize a busy
// hour for a 10x larger population, and check the macroscopic fidelity.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"cptraffic/internal/cluster"
	"cptraffic/internal/core"
	"cptraffic/internal/cp"
	"cptraffic/internal/eval"
	"cptraffic/internal/world"
)

func main() {
	log.SetFlags(0)

	// 1. A day in the life of 800 UEs — the stand-in for a carrier trace.
	train, err := world.Generate(world.Options{NumUEs: 800, Duration: cp.Day, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("world:     %d UEs emitted %d control events over 24 h\n",
		train.NumUEs(), train.Len())

	// 2. Fit the paper's model: two-level machine, empirical CDF
	//    sojourns, adaptive clustering.
	model, err := core.Fit(train, core.FitOptions{
		Cluster: cluster.Options{ThetaN: 40},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fit:       %d (cluster, hour, device) semi-Markov models\n", model.NumModels())

	// 3. Synthesize the 18:00 busy hour for a 10x larger population.
	syn, err := core.Generate(model, core.GenOptions{
		NumUEs:    8000,
		StartHour: 18,
		Duration:  cp.Hour,
		Seed:      7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generate:  %d UEs -> %d events in the busy hour\n", syn.NumUEs(), syn.Len())

	// 4. Compare the synthesized breakdown against a held-out world draw.
	held, err := world.Generate(world.Options{NumUEs: 8000, Duration: 19 * cp.Hour, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	real18 := held.Slice(18*cp.Hour, 19*cp.Hour)
	fmt.Println("\nper-device max |breakdown difference| vs held-out real traffic:")
	for _, d := range cp.DeviceTypes {
		rb := eval.ComputeBreakdown(real18, d)
		sb := eval.ComputeBreakdown(syn, d)
		fmt.Printf("  %-7s %5.1f%%  (real %d events, synthesized %d)\n",
			d, 100*eval.MaxAbsDiff(eval.BreakdownDiff(rb, sb)), rb.Total, sb.Total)
	}
	fmt.Println("\nHO (IDLE) in the synthesized trace (must be 0 — the two-level machine forbids it):")
	for _, d := range cp.DeviceTypes {
		fmt.Printf("  %-7s %.2f%%\n", d, 100*eval.ComputeBreakdown(syn, d).Share["HO (IDLE)"])
	}
}
