// Streaming: synthesize a large population without materializing the
// trace — per-UE generators are heap-merged and events flow straight
// into the simulated core in time order with O(UEs) memory. This is how
// to drive a live MCN with populations whose full trace would not fit.
//
//	go run ./examples/stream
package main

import (
	"fmt"
	"log"

	"cptraffic/internal/cluster"
	"cptraffic/internal/core"
	"cptraffic/internal/cp"
	"cptraffic/internal/mcn"
	"cptraffic/internal/sm"
	"cptraffic/internal/trace"
	"cptraffic/internal/world"
)

func main() {
	log.SetFlags(0)

	train, err := world.Generate(world.Options{NumUEs: 500, Duration: cp.Day, Seed: 41})
	if err != nil {
		log.Fatal(err)
	}
	model, err := core.Fit(train, core.FitOptions{Cluster: cluster.Options{ThetaN: 40}})
	if err != nil {
		log.Fatal(err)
	}

	mme := mcn.New(sm.LTE2Level())
	var processed int
	var lastReport cp.Millis
	fmt.Println("streaming a 30,000-UE busy hour into the MME (10-minute checkpoints):")
	err = core.Stream(model, core.GenOptions{
		NumUEs:    30000,
		StartHour: 18,
		Duration:  cp.Hour,
		Seed:      11,
	}, nil, func(ev trace.Event) error {
		if err := mme.Process(ev); err != nil {
			return err
		}
		processed++
		if ev.T-lastReport >= 10*cp.Minute {
			lastReport = ev.T
			s := mme.Stats()
			fmt.Printf("  t=%4.0f min: %8d events, %5d connected now (peak %5d), %d violations\n",
				(ev.T-18*cp.Hour).Seconds()/60, processed,
				s.Connected, s.PeakConnected, s.Violations)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	s := mme.Stats()
	fmt.Printf("\ndone: %d events; per-type transactions:\n", s.Processed)
	for _, e := range cp.EventTypes {
		fmt.Printf("  %-12s %8d\n", e, s.Transactions[e])
	}
	fmt.Printf("protocol violations observed by the core: %d\n", s.Violations)
}
