// MCN load test: the paper's primary use case (§3.1) — drive a mobile
// core network with synthesized control traffic at increasing population
// scales and measure the signaling load the core sustains.
//
//	go run ./examples/mcnloadtest
package main

import (
	"fmt"
	"log"
	"time"

	"cptraffic/internal/cluster"
	"cptraffic/internal/core"
	"cptraffic/internal/cp"
	"cptraffic/internal/mcn"
	"cptraffic/internal/sm"
	"cptraffic/internal/world"
)

func main() {
	log.SetFlags(0)

	train, err := world.Generate(world.Options{NumUEs: 600, Duration: cp.Day, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	model, err := core.Fit(train, core.FitOptions{Cluster: cluster.Options{ThetaN: 40}})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("scaling the UE population against a simulated MME (busy hour 18):")
	fmt.Printf("%10s %12s %14s %12s %12s %11s\n",
		"UEs", "events", "events/s avg", "peak conn.", "violations", "drive time")
	for _, ues := range []int{1000, 5000, 20000} {
		tr, err := core.Generate(model, core.GenOptions{
			NumUEs:    ues,
			StartHour: 18,
			Duration:  cp.Hour,
			Seed:      3,
		})
		if err != nil {
			log.Fatal(err)
		}
		mme := mcn.New(sm.LTE2Level())
		start := time.Now()
		stats, err := mme.ProcessTrace(tr)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		fmt.Printf("%10d %12d %14.1f %12d %12d %11v\n",
			ues, stats.Processed, float64(stats.Processed)/3600,
			stats.PeakConnected, stats.Violations, elapsed.Round(time.Millisecond))
	}

	fmt.Println("\nevery synthesized event carries its owner UE, so the MME tracks")
	fmt.Println("per-UE EMM/ECM state transitions exactly as a production core would.")

	// Horizontal scaling: shard 20,000 UEs across an MME pool and see
	// how evenly realistic heavy-tailed traffic spreads.
	tr, err := core.Generate(model, core.GenOptions{
		NumUEs: 20000, StartHour: 18, Duration: cp.Hour, Seed: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nUE-affinity sharding across an MME pool (20,000 UEs):")
	for _, n := range []int{2, 4, 8} {
		pool, err := mcn.NewPool(n, sm.LTE2Level())
		if err != nil {
			log.Fatal(err)
		}
		st, err := pool.ProcessTrace(tr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %d instances: total imbalance %.3f, busiest-minute imbalance %.3f\n",
			n, st.Imbalance, st.PeakImbalance)
	}
}
