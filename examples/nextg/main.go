// NextG projection: the paper's §6 methodology — adapt the fitted LTE
// model to 5G NSA and 5G SA and project how the control-plane mix shifts,
// especially the handover share under mmWave cell sizes.
//
//	go run ./examples/nextg
package main

import (
	"fmt"
	"log"

	"cptraffic/internal/cluster"
	"cptraffic/internal/core"
	"cptraffic/internal/cp"
	"cptraffic/internal/fiveg"
	"cptraffic/internal/world"
)

func main() {
	log.SetFlags(0)

	train, err := world.Generate(world.Options{NumUEs: 600, Duration: cp.Day, Seed: 31})
	if err != nil {
		log.Fatal(err)
	}
	lte, err := core.Fit(train, core.FitOptions{Cluster: cluster.Options{ThetaN: 40}})
	if err != nil {
		log.Fatal(err)
	}
	nsa, err := fiveg.ToNSA(lte, fiveg.NSAHandoverFactor)
	if err != nil {
		log.Fatal(err)
	}
	sa, err := fiveg.ToSA(lte, fiveg.SAHandoverFactor)
	if err != nil {
		log.Fatal(err)
	}

	genOpt := core.GenOptions{NumUEs: 3000, StartHour: 7, Duration: 12 * cp.Hour, Seed: 9}
	nets := []struct {
		name string
		ms   *core.ModelSet
	}{{"LTE", lte}, {"5G NSA (HO x4.6)", nsa}, {"5G SA (HO x3.0, no TAU)", sa}}

	fmt.Println("projected control-plane mix, 3,000 UEs, 07:00-19:00:")
	for _, n := range nets {
		tr, err := core.Generate(n.ms, genOpt)
		if err != nil {
			log.Fatal(err)
		}
		c := tr.CountByType()
		fmt.Printf("\n%-24s %8d events\n", n.name, tr.Len())
		for _, e := range cp.EventTypes {
			if c[e] == 0 {
				continue
			}
			label := e.String()
			if n.ms.MachineName == "5G-SA" {
				if name5g, ok := e.FiveGName(); ok {
					label = name5g
				}
			}
			fmt.Printf("    %-12s %6.1f%%\n", label, 100*float64(c[e])/float64(tr.Len()))
		}
	}
	fmt.Println("\nNSA hands over on both the LTE and 5G RANs, so its HO share exceeds")
	fmt.Println("SA's — the ordering the paper's Table 7 projects.")
}
