// Monitoring study: the paper's second use case (§3.1) — use the traffic
// model to pick a sampling rate for control-plane telemetry. The program
// synthesizes a busy hour, then evaluates how accurately sampled
// monitoring (every k-th event) estimates the per-event-type load and the
// peak signaling rate.
//
//	go run ./examples/monitoring
package main

import (
	"fmt"
	"log"
	"math"

	"cptraffic/internal/cluster"
	"cptraffic/internal/core"
	"cptraffic/internal/cp"
	"cptraffic/internal/mcn"
	"cptraffic/internal/trace"
	"cptraffic/internal/world"
)

func main() {
	log.SetFlags(0)

	train, err := world.Generate(world.Options{NumUEs: 600, Duration: cp.Day, Seed: 21})
	if err != nil {
		log.Fatal(err)
	}
	model, err := core.Fit(train, core.FitOptions{Cluster: cluster.Options{ThetaN: 40}})
	if err != nil {
		log.Fatal(err)
	}
	tr, err := core.Generate(model, core.GenOptions{
		NumUEs: 10000, StartHour: 18, Duration: cp.Hour, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}

	truth := tr.CountByType()
	truthLoad := mcn.LoadSeries(tr, 10*cp.Second)
	truthPeak := 0
	for _, v := range truthLoad {
		if v > truthPeak {
			truthPeak = v
		}
	}
	fmt.Printf("ground truth: %d events in the busy hour; peak 10s window = %d events\n\n",
		tr.Len(), truthPeak)

	fmt.Printf("%8s %22s %20s\n", "sample", "max share error", "peak-rate error")
	for _, k := range []int{10, 100, 1000} {
		sampled := trace.New()
		for ue, d := range tr.Device {
			sampled.Device[ue] = d
		}
		for i, e := range tr.Events {
			if i%k == 0 {
				sampled.Events = append(sampled.Events, e)
			}
		}
		// Share estimation error across event types.
		est := sampled.CountByType()
		var maxErr float64
		for _, e := range cp.EventTypes {
			tShare := float64(truth[e]) / float64(tr.Len())
			sShare := 0.0
			if sampled.Len() > 0 {
				sShare = float64(est[e]) / float64(sampled.Len())
			}
			if d := math.Abs(tShare - sShare); d > maxErr {
				maxErr = d
			}
		}
		// Peak-rate estimation error (scaled back up by k).
		peakErr := math.NaN()
		if load := mcn.LoadSeries(sampled, 10*cp.Second); load != nil {
			peak := 0
			for _, v := range load {
				if v > peak {
					peak = v
				}
			}
			peakErr = math.Abs(float64(peak*k-truthPeak)) / float64(truthPeak)
		}
		fmt.Printf("1-in-%-4d %20.2f%% %19.1f%%\n", k, 100*maxErr, 100*peakErr)
	}
	fmt.Println("\nthe model lets operators run this trade-off for any population size")
	fmt.Println("before deploying a telemetry pipeline.")
}
