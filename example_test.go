package cptraffic_test

import (
	"bytes"
	"fmt"
	"log"

	cptraffic "cptraffic"
)

// Example demonstrates the three-step pipeline: simulate a ground truth,
// fit the paper's model, synthesize a larger population. Everything is
// seeded, so the structural outputs below are stable.
func Example() {
	world, err := cptraffic.SimulateWorld(cptraffic.WorldOptions{
		NumUEs: 200, Duration: 2 * cptraffic.Hour, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	model, err := cptraffic.FitModel(world, "ours", cptraffic.ClusterOptions{ThetaN: 25})
	if err != nil {
		log.Fatal(err)
	}
	syn, err := cptraffic.GenerateTraffic(model, cptraffic.GenOptions{
		NumUEs: 1000, StartHour: 1, Duration: cptraffic.Hour, Seed: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("trained UEs:", world.NumUEs())
	fmt.Println("synthesized UEs:", syn.NumUEs())
	fmt.Println("synthesized sorted:", syn.Sorted())
	fmt.Println("machine:", model.MachineName)
	// Output:
	// trained UEs: 200
	// synthesized UEs: 1000
	// synthesized sorted: true
	// machine: LTE-2LEVEL
}

// ExampleFitModel fits the paper's model on a simulated ground-truth
// trace and inspects the result. FitModel is the common-case entry
// point; Fit exposes the full options, including the fitting worker
// count (the model is byte-identical for any worker count).
func ExampleFitModel() {
	world, err := cptraffic.SimulateWorld(cptraffic.WorldOptions{
		NumUEs: 200, Duration: 2 * cptraffic.Hour, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	model, err := cptraffic.FitModel(world, "ours", cptraffic.ClusterOptions{ThetaN: 25})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("method:", model.Method)
	fmt.Println("machine:", model.MachineName)
	fmt.Println("models fitted:", model.NumModels() > 0)
	// Output:
	// method: ours
	// machine: LTE-2LEVEL
	// models fitted: true
}

// ExampleGenerateTraffic completes the fit → generate round trip: a
// model fitted on 200 simulated UEs synthesizes a busy-hour trace for a
// 20x larger population. The output is sorted and deterministic in the
// seed, regardless of worker count.
func ExampleGenerateTraffic() {
	world, err := cptraffic.SimulateWorld(cptraffic.WorldOptions{
		NumUEs: 200, Duration: 2 * cptraffic.Hour, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	model, err := cptraffic.FitModel(world, "ours", cptraffic.ClusterOptions{ThetaN: 25})
	if err != nil {
		log.Fatal(err)
	}
	syn, err := cptraffic.GenerateTraffic(model, cptraffic.GenOptions{
		NumUEs: 4000, StartHour: 1, Duration: cptraffic.Hour, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("UEs:", syn.NumUEs())
	fmt.Println("sorted:", syn.Sorted())
	fmt.Println("has events:", syn.Len() > 0)
	// Output:
	// UEs: 4000
	// sorted: true
	// has events: true
}

// ExampleFit demonstrates the determinism contract of the parallel
// fitting pipeline: the serialized model bytes are identical whether
// the fit ran on one worker or eight.
func ExampleFit() {
	world, err := cptraffic.SimulateWorld(cptraffic.WorldOptions{
		NumUEs: 120, Duration: 2 * cptraffic.Hour, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	var serial, parallel bytes.Buffer
	for _, cfg := range []struct {
		workers int
		buf     *bytes.Buffer
	}{{1, &serial}, {8, &parallel}} {
		m, err := cptraffic.Fit(world, cptraffic.FitOptions{
			Method:  "ours",
			Cluster: cptraffic.ClusterOptions{ThetaN: 25},
			Workers: cfg.workers,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := m.Save(cfg.buf); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("byte-identical:", bytes.Equal(serial.Bytes(), parallel.Bytes()))
	// Output:
	// byte-identical: true
}

// ExampleAdaptToSA shows the 5G standalone adaptation: the TAU event
// type disappears from the generated vocabulary (Table 2's mapping).
func ExampleAdaptToSA() {
	world, err := cptraffic.SimulateWorld(cptraffic.WorldOptions{
		NumUEs: 150, Duration: 2 * cptraffic.Hour, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	lte, err := cptraffic.FitModel(world, "ours", cptraffic.ClusterOptions{ThetaN: 25})
	if err != nil {
		log.Fatal(err)
	}
	sa, err := cptraffic.AdaptToSA(lte, cptraffic.SAHandoverFactor)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := cptraffic.GenerateTraffic(sa, cptraffic.GenOptions{
		NumUEs: 300, StartHour: 1, Duration: cptraffic.Hour, Seed: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("machine:", sa.MachineName)
	fmt.Println("TAU events:", tr.CountByType()[cptraffic.TrackingAreaUpdate])
	// Output:
	// machine: 5G-SA
	// TAU events: 0
}

// ExamplePartialFit shards a fit across the UE population: each shard
// ingests its hash slice of the trace independently (in a separate
// process or machine, normally — checkpoints travel as partialfit/1
// JSON), and merging the partials rebuilds the exact unsharded model,
// byte for byte. One shard takes a detour through Encode/LoadPartialFit
// to show that checkpoints preserve the fit exactly.
func ExamplePartialFit() {
	world, err := cptraffic.SimulateWorld(cptraffic.WorldOptions{
		NumUEs: 200, Duration: 2 * cptraffic.Hour, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	opt := cptraffic.FitOptions{Method: "ours", Cluster: cptraffic.ClusterOptions{ThetaN: 25}}

	const shards = 2
	parts := make([]*cptraffic.PartialFit, shards)
	for s := range parts {
		pf, err := cptraffic.NewPartialFit(opt)
		if err != nil {
			log.Fatal(err)
		}
		src, err := cptraffic.ShardSource(world, shards, s)
		if err != nil {
			log.Fatal(err)
		}
		if err := pf.AddSource(src); err != nil {
			log.Fatal(err)
		}
		parts[s] = pf
	}

	// Round-trip shard 1 through its serialized checkpoint form.
	var ckpt bytes.Buffer
	if err := parts[1].Encode(&ckpt); err != nil {
		log.Fatal(err)
	}
	restored, err := cptraffic.LoadPartialFit(&ckpt)
	if err != nil {
		log.Fatal(err)
	}

	merged, err := cptraffic.MergeFits(parts[0], restored)
	if err != nil {
		log.Fatal(err)
	}
	unsharded, err := cptraffic.Fit(world, opt)
	if err != nil {
		log.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := merged.Save(&a); err != nil {
		log.Fatal(err)
	}
	if err := unsharded.Save(&b); err != nil {
		log.Fatal(err)
	}
	fmt.Println("byte-identical to unsharded fit:", bytes.Equal(a.Bytes(), b.Bytes()))
	// Output:
	// byte-identical to unsharded fit: true
}

// ExampleMethods lists the Table 3 modeling methods.
func ExampleMethods() {
	fmt.Println(cptraffic.Methods())
	// Output:
	// [base v1 v2 ours]
}

// ExampleScenario runs a starter scenario end to end at reduced scale:
// load and validate the file, simulate its population, and replay the
// fault schedule into a storm report. Same file + seed means identical
// output at any worker count, so the printed facts are pinned.
func ExampleScenario() {
	s, err := cptraffic.LoadScenario("scenarios/stadium-event.json")
	if err != nil {
		log.Fatal(err)
	}
	s = s.Scaled(0.01) // 600 UEs instead of 60000
	tr, err := cptraffic.SimulateScenario(s, 0)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := cptraffic.RunStorm(s, tr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("scenario:", rep.Scenario)
	fmt.Println("faults:", len(s.Faults))
	fmt.Println("injected attaches:", rep.InjectedAttaches)
	fmt.Println("events replayed:", rep.Events > 10000)
	// Output:
	// scenario: stadium-event
	// faults: 2
	// injected attaches: 360
	// events replayed: true
}
