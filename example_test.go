package cptraffic_test

import (
	"fmt"
	"log"

	cptraffic "cptraffic"
)

// Example demonstrates the three-step pipeline: simulate a ground truth,
// fit the paper's model, synthesize a larger population. Everything is
// seeded, so the structural outputs below are stable.
func Example() {
	world, err := cptraffic.SimulateWorld(cptraffic.WorldOptions{
		NumUEs: 200, Duration: 2 * cptraffic.Hour, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	model, err := cptraffic.FitModel(world, "ours", cptraffic.ClusterOptions{ThetaN: 25})
	if err != nil {
		log.Fatal(err)
	}
	syn, err := cptraffic.GenerateTraffic(model, cptraffic.GenOptions{
		NumUEs: 1000, StartHour: 1, Duration: cptraffic.Hour, Seed: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("trained UEs:", world.NumUEs())
	fmt.Println("synthesized UEs:", syn.NumUEs())
	fmt.Println("synthesized sorted:", syn.Sorted())
	fmt.Println("machine:", model.MachineName)
	// Output:
	// trained UEs: 200
	// synthesized UEs: 1000
	// synthesized sorted: true
	// machine: LTE-2LEVEL
}

// ExampleAdaptToSA shows the 5G standalone adaptation: the TAU event
// type disappears from the generated vocabulary (Table 2's mapping).
func ExampleAdaptToSA() {
	world, err := cptraffic.SimulateWorld(cptraffic.WorldOptions{
		NumUEs: 150, Duration: 2 * cptraffic.Hour, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	lte, err := cptraffic.FitModel(world, "ours", cptraffic.ClusterOptions{ThetaN: 25})
	if err != nil {
		log.Fatal(err)
	}
	sa, err := cptraffic.AdaptToSA(lte, cptraffic.SAHandoverFactor)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := cptraffic.GenerateTraffic(sa, cptraffic.GenOptions{
		NumUEs: 300, StartHour: 1, Duration: cptraffic.Hour, Seed: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("machine:", sa.MachineName)
	fmt.Println("TAU events:", tr.CountByType()[cptraffic.TrackingAreaUpdate])
	// Output:
	// machine: 5G-SA
	// TAU events: 0
}

// ExampleMethods lists the Table 3 modeling methods.
func ExampleMethods() {
	fmt.Println(cptraffic.Methods())
	// Output:
	// [base v1 v2 ours]
}
