// Package cptraffic models and generates control-plane traffic for
// cellular networks, reproducing the system of "Modeling and Generating
// Control-Plane Traffic for Cellular Networks" (ACM IMC 2023).
//
// The package is the public facade over the implementation packages:
//
//   - a two-level hierarchical state-machine Semi-Markov traffic model
//     fitted per (UE cluster, hour-of-day, device type), with empirical
//     CDF sojourn distributions and adaptive quadtree UE clustering;
//   - a per-UE trace generator that synthesizes labeled control-plane
//     traces for arbitrary UE populations, for LTE and for 5G NSA/SA;
//   - the comparison methods of the paper's Table 3 (Poisson baselines);
//   - a behavioral "world" simulator that substitutes for proprietary
//     carrier traces;
//   - trace evaluation: breakdowns, per-UE CDF distances, goodness-of-fit
//     sweeps.
//
// Quick start:
//
//	world, _ := cptraffic.SimulateWorld(cptraffic.WorldOptions{
//		NumUEs: 1000, Duration: cptraffic.Day, Seed: 1,
//	})
//	model, _ := cptraffic.FitModel(world, "ours", cptraffic.ClusterOptions{ThetaN: 50})
//	trace, _ := cptraffic.GenerateTraffic(model, cptraffic.GenOptions{
//		NumUEs: 10000, StartHour: 18, Duration: cptraffic.Hour, Seed: 2,
//	})
//
// See the runnable programs under examples/ and the experiment index in
// DESIGN.md.
package cptraffic

import (
	"errors"
	"io"

	"cptraffic/internal/baseline"
	"cptraffic/internal/cluster"
	"cptraffic/internal/core"
	"cptraffic/internal/cp"
	"cptraffic/internal/fiveg"
	"cptraffic/internal/mcn"
	"cptraffic/internal/scenario"
	"cptraffic/internal/trace"
	"cptraffic/internal/world"
)

// Time base re-exports.
type Millis = cp.Millis

// Common durations in the Millis time base.
const (
	Second = cp.Second
	Minute = cp.Minute
	Hour   = cp.Hour
	Day    = cp.Day
	Week   = cp.Week
)

// Control-plane vocabulary re-exports.
type (
	// EventType is one of the six LTE control-plane event types.
	EventType = cp.EventType
	// DeviceType is phone, connected car, or tablet.
	DeviceType = cp.DeviceType
	// UEID labels a User Equipment within a trace.
	UEID = cp.UEID
)

// Event types (paper Table 1).
const (
	Attach             = cp.Attach
	Detach             = cp.Detach
	ServiceRequest     = cp.ServiceRequest
	S1ConnRelease      = cp.S1ConnRelease
	Handover           = cp.Handover
	TrackingAreaUpdate = cp.TrackingAreaUpdate
)

// Device types.
const (
	Phone        = cp.Phone
	ConnectedCar = cp.ConnectedCar
	Tablet       = cp.Tablet
)

// Trace is a UE-labeled control-plane event trace.
type Trace = trace.Trace

// TraceEvent is a single timestamped, UE-labeled control event.
type TraceEvent = trace.Event

// NewTrace returns an empty in-memory trace (also usable as an
// EventSink or, once filled, an EventSource).
func NewTrace() *Trace { return trace.New() }

// ReadTrace parses the line-oriented trace format.
func ReadTrace(r io.Reader) (*Trace, error) { return trace.ReadTrace(r) }

// WriteTrace serializes a trace.
func WriteTrace(w io.Writer, tr *Trace) error { return trace.WriteTrace(w, tr) }

// Streaming abstraction re-exports. An EventSource delivers a trace
// incrementally — device registrations first, then events in canonical
// (time, UE, type) order — so pipelines can run in bounded memory; an
// EventSink receives one the same way. *Trace implements both, making
// the in-memory path the reference implementation.
type (
	// EventSource is an ordered, re-iterable stream of trace events.
	EventSource = trace.EventSource
	// EventSink consumes device registrations and ordered events.
	EventSink = trace.EventSink
)

// Batched pipeline re-exports. A Batch carries a run of canonical-order
// events in struct-of-arrays layout; sources that implement BatchSource
// and sinks that implement BatchSink move whole batches through the hot
// path instead of one interface call per event. Batch boundaries never
// affect the produced trace or its serialized bytes (test-enforced);
// adapters bridge every EventSource/EventSink onto the batched faces.
type (
	// Batch is a struct-of-arrays run of trace events.
	Batch = trace.Batch
	// BatchSource delivers a trace as a sequence of reused batches.
	BatchSource = trace.BatchSource
	// BatchSink consumes registrations and whole event batches.
	BatchSink = trace.BatchSink
)

// CopyBatches streams src into dst over the batched pipeline, using
// each side's native batch support when present and adapting otherwise.
// The result is byte-identical to the per-event trace.Copy.
func CopyBatches(dst EventSink, src EventSource) error { return trace.CopyBatches(dst, src) }

// NewFileSource opens an on-disk trace (binary or text) as a re-iterable
// EventSource that reads incrementally instead of loading the file.
func NewFileSource(path string) (EventSource, error) { return trace.NewFileSource(path) }

// CollectTrace materializes a source into an in-memory trace.
func CollectTrace(src EventSource) (*Trace, error) { return trace.Collect(src) }

// WorldOptions configures the ground-truth behavioral simulator.
type WorldOptions = world.Options

// SimulateWorld synthesizes a carrier-style ground-truth trace from the
// behavioral UE simulator (the stand-in for a production collection).
func SimulateWorld(opt WorldOptions) (*Trace, error) { return world.Generate(opt) }

// WorldSource returns a simulation-backed EventSource that produces
// exactly SimulateWorld's trace while holding only O(NumUEs) state.
func WorldSource(opt WorldOptions) (EventSource, error) { return world.NewSource(opt) }

// Model is a fitted control-plane traffic model.
type Model = core.ModelSet

// ClusterOptions configures the adaptive quadtree clustering (§5.3):
// ThetaF is the per-feature similarity threshold (default 5), ThetaN the
// minimum cluster size (default 1000; scale it with the population).
type ClusterOptions = cluster.Options

// Methods lists the supported modeling methods: "base", "v1", "v2" (the
// paper's comparison methods, Table 3) and "ours" (the contribution).
func Methods() []string { return append([]string(nil), baseline.Methods...) }

// FitOptions configures Fit beyond the per-method defaults.
type FitOptions struct {
	// Method is one of Methods(): "base", "v1", "v2" or "ours"
	// (default).
	Method string
	// Cluster configures the adaptive clustering (§5.3).
	Cluster ClusterOptions
	// Workers bounds fitting concurrency; 0 means GOMAXPROCS. The
	// fitted model is byte-identical for any worker count — Workers
	// only changes the wall clock.
	Workers int
	// SketchK, when positive, bounds every sample pool to a k-item
	// mergeable sketch, capping fit memory independently of trace
	// length. Quantiles carry a distribution error of at most
	// stats.SketchErrorBound(k). Sketched fits stay byte-deterministic
	// across shard counts and merge orders, but differ from exact
	// (SketchK == 0) fits. 0 keeps every sample.
	SketchK int
}

func (opt FitOptions) lower() (core.FitOptions, error) {
	method := opt.Method
	if method == "" {
		method = "ours"
	}
	copt, err := baseline.Options(method, opt.Cluster)
	if err != nil {
		return copt, err
	}
	copt.Workers = opt.Workers
	copt.SketchK = opt.SketchK
	return copt, nil
}

// Fit estimates a traffic model from a trace with explicit control over
// the fitting pipeline; FitModel is the common-case shorthand.
func Fit(tr *Trace, opt FitOptions) (*Model, error) {
	copt, err := opt.lower()
	if err != nil {
		return nil, err
	}
	return core.Fit(tr, copt)
}

// FitModel estimates a traffic model from a trace using the named method.
func FitModel(tr *Trace, method string, co ClusterOptions) (*Model, error) {
	return Fit(tr, FitOptions{Method: method, Cluster: co})
}

// FitStream estimates a traffic model from a streaming source in one
// scan without materializing the trace: memory is O(UEs + retained
// samples) instead of O(events), and SketchK bounds the sample term
// too. The fitted model is byte-identical to Fit on the collected
// trace, for any source kind and worker count.
func FitStream(src EventSource, opt FitOptions) (*Model, error) {
	copt, err := opt.lower()
	if err != nil {
		return nil, err
	}
	return core.FitStream(src, copt)
}

// PartialFit is the mergeable, serializable state of an in-progress
// fit: feed it sources or events, checkpoint it mid-scan with Encode,
// and Build the model — or fit disjoint UE shards in parallel (even on
// separate machines) and combine them with MergeFits. Fit and
// FitStream are thin drivers over a single PartialFit.
type PartialFit = core.PartialFit

// NewPartialFit starts an empty partial fit. Partials only merge when
// they were created with the same options (Workers excluded).
func NewPartialFit(opt FitOptions) (*PartialFit, error) {
	copt, err := opt.lower()
	if err != nil {
		return nil, err
	}
	return core.NewPartialFit(copt)
}

// LoadPartialFit reads a partialfit/1 checkpoint written with
// (*PartialFit).Encode (see PARTIALFIT.md for the format). The result
// can resume its source scan, merge with sibling shards, or Build.
func LoadPartialFit(r io.Reader) (*PartialFit, error) { return core.DecodePartial(r) }

// MergeFits combines partial fits over disjoint UE populations and
// builds the model. The result is byte-identical to a single fit over
// the union of the shards' traffic, whatever the argument order.
func MergeFits(parts ...*PartialFit) (*Model, error) {
	if len(parts) == 0 {
		return nil, errors.New("cptraffic: MergeFits needs at least one partial fit")
	}
	root := parts[0]
	for _, p := range parts[1:] {
		if err := root.Merge(p); err != nil {
			return nil, err
		}
	}
	return root.Build()
}

// ShardSource filters a source down to shard i of n by a deterministic
// hash of the UE ID (trace.UEShard), so independent workers can each
// fit a disjoint slice of the population. Every UE's full event stream
// lands in exactly one shard.
func ShardSource(src EventSource, shards, shard int) (EventSource, error) {
	return trace.ShardSource(src, shards, shard)
}

// LoadModel reads a model saved with (*Model).Save.
func LoadModel(r io.Reader) (*Model, error) { return core.Load(r) }

// GenOptions configures trace synthesis.
type GenOptions = core.GenOptions

// GenerateTraffic synthesizes a control-plane trace for any population
// size by running one per-UE semi-Markov generator per UE (§7).
func GenerateTraffic(ms *Model, opt GenOptions) (*Trace, error) {
	return core.Generate(ms, opt)
}

// TrafficSource returns a generator-backed EventSource that produces
// exactly GenerateTraffic's trace while holding only O(NumUEs) state —
// populations whose traces would not fit in memory can be streamed to
// disk or fitted directly.
func TrafficSource(ms *Model, opt GenOptions) (EventSource, error) {
	return core.NewSource(ms, opt)
}

// GenerateTo streams a synthetic trace into sink without materializing
// it: registrations first, then events in canonical order. The transfer
// rides the batched pipeline (the generator fills struct-of-arrays
// batches natively); the delivered events and bytes are identical to
// the per-event path.
func GenerateTo(ms *Model, opt GenOptions, sink EventSink) error {
	src, err := core.NewSource(ms, opt)
	if err != nil {
		return err
	}
	return trace.CopyBatches(sink, src)
}

// Scenario is a parsed scenario/1 file: a named, versioned description
// of a population, its diurnal placement, the 4G/5G split, optional
// per-NF capacities, and a timed fault schedule. The normative field
// reference is SCENARIOS.md.
type Scenario = scenario.Scenario

// StormReport is the storm-propagation report of one scenario replay:
// per-NF queue depth, drop and retry counts, and attach latency as
// time series.
type StormReport = mcn.StormReport

// LoadScenario reads, strictly parses, and validates a scenario/1
// file. Unknown fields and unknown schema versions are rejected.
func LoadScenario(path string) (*Scenario, error) { return scenario.Load(path) }

// ParseScenario reads a scenario/1 document from r (see LoadScenario).
func ParseScenario(r io.Reader) (*Scenario, error) { return scenario.Parse(r) }

// SimulateScenario generates the scenario's ground-truth trace through
// the behavioral world simulator. The same scenario file and seed
// produce a byte-identical trace at any worker count (0 means
// GOMAXPROCS).
func SimulateScenario(s *Scenario, workers int) (*Trace, error) {
	return scenario.Simulate(s, workers)
}

// RunStorm replays a trace through the scenario's fault schedule in
// the NF queueing model and returns the storm-propagation report. The
// report serializes deterministically: identical scenario + trace
// inputs yield identical bytes.
func RunStorm(s *Scenario, tr *Trace) (*StormReport, error) {
	return scenario.Storm(s, tr)
}

// 5G handover scaling factors (paper §6 and §8.2).
const (
	NSAHandoverFactor = fiveg.NSAHandoverFactor
	SAHandoverFactor  = fiveg.SAHandoverFactor
)

// AdaptToNSA derives a 5G non-standalone model from a fitted LTE model
// (same machine, handover frequency scaled).
func AdaptToNSA(ms *Model, hoFactor float64) (*Model, error) { return fiveg.ToNSA(ms, hoFactor) }

// AdaptToSA derives a 5G standalone model (Fig. 6 machine, TAU removed,
// handover frequency scaled).
func AdaptToSA(ms *Model, hoFactor float64) (*Model, error) { return fiveg.ToSA(ms, hoFactor) }
