# Development targets. `make check` is the pre-commit gate: formatting,
# vet, build, the cplint static-analysis suite, the full test suite, the
# race detector over every package that runs its own goroutine pools,
# and the steady-state allocation regression gate. cplint runs before
# the slow race/alloc stages so invariant violations fail fast.

GO ?= go

RACE_PKGS = ./internal/par/ ./internal/trace/ ./internal/core/ ./internal/world/ ./internal/eval/ ./internal/experiments/ ./internal/mcn/ ./internal/scenario/ ./cmd/stormsim/

# Per-target fuzzing time for fuzz-smoke (two targets, so the total
# fuzzing wall clock is twice this). CI raises it to 15s per target.
FUZZTIME ?= 15s

.PHONY: check fmt vet build lint fix test race allocs fuzz-smoke scenarios shardcheck audit bench experiments

check: fmt vet build lint test race allocs fuzz-smoke scenarios shardcheck

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# The repo's own analyzers: determinism (detmap, detsource), enum
# coverage (exhaustive), float-fold ordering (floatfold), model
# immutability (frozen), hot-path allocation (hotalloc, plus its
# call-graph-propagated form hotcall), par-pool write disjointness
# (parshare), the reused-buffer retention contract (retain), and the
# serving-era concurrency contract (guardedby, goleak, ctxflow).
lint:
	$(GO) run ./cmd/cplint ./...

# Apply every suggested fix (gofmt-clean, idempotent), then report what
# still needs a human.
fix:
	$(GO) run ./cmd/cplint -fix ./...

# The batchdebug pass is the runtime counterpart of the retain
# analyzer: Batch.Reset poisons its columns, and the gated tests prove
# a retaining consumer observes it (while the default build does not).
test:
	$(GO) test ./...
	$(GO) test -tags batchdebug ./internal/trace/

# The fitting, generation, simulation, and pass-rate pipelines all fan
# out over worker pools; any change to them must stay race-clean. The
# lint loader/analyzer fan-out is covered in -short mode (the full
# fixture matrix is slow under the race detector).
race:
	$(GO) test -race $(RACE_PKGS)
	$(GO) test -race -short ./internal/lint/

# The compiled generator and the world simulator must stay
# zero-allocation in their steady-state step (the race build disables
# these gates itself, so they need a non-race run).
allocs:
	$(GO) test -run 'SteadyStateAllocs' ./internal/core/ ./internal/world/

# Coverage-guided fuzzing over the two external input surfaces: the
# scenario JSON parser (seeded from scenarios/*.json) and the
# partialfit/1 binary decoder (seeded from fresh encodings). Both
# targets assert decode→encode round-trip byte stability.
fuzz-smoke:
	$(GO) test -run '^FuzzParseScenario$$' -fuzz '^FuzzParseScenario$$' -fuzztime $(FUZZTIME) ./internal/scenario/
	$(GO) test -run '^FuzzDecodePartial$$' -fuzz '^FuzzDecodePartial$$' -fuzztime $(FUZZTIME) ./internal/core/

# Smoke-run every starter scenario through stormsim at reduced scale:
# validation, world simulation, storm replay, and the byte-identity
# selftest (1 vs 8 workers) for each file in scenarios/.
scenarios:
	$(GO) run ./cmd/stormsim -selftest -scale 0.05 scenarios/*.json

# End-to-end sharded-fit contract through the real binaries: fit a
# small world trace as four hash shards, merge the partialfit/1 files
# in a shuffled order, resume a checkpoint — every product must be
# byte-identical to the unsharded fit.
shardcheck:
	scripts/shardcheck.sh

# Third-party audits (staticcheck + govulncheck) at pinned versions;
# skipped with a warning when the tools are absent and cannot be
# installed (offline builds).
audit:
	scripts/audit.sh

# Record the perf ledger: BENCH_<date>.txt + BENCH_<date>.json.
# Compare two recordings with scripts/benchcmp.sh.
bench:
	scripts/bench.sh

experiments:
	$(GO) run ./cmd/experiments
