# Development targets. `make check` is the pre-commit gate: formatting,
# vet, build, the full test suite, and the race detector over every
# package that runs its own goroutine pools.

GO ?= go

RACE_PKGS = ./internal/par/ ./internal/trace/ ./internal/core/ ./internal/world/ ./internal/eval/ ./internal/experiments/

.PHONY: check fmt vet build test race bench experiments

check: fmt vet build test race

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The fitting, generation, simulation, and pass-rate pipelines all fan
# out over worker pools; any change to them must stay race-clean.
race:
	$(GO) test -race $(RACE_PKGS)

bench:
	$(GO) test -run='^$$' -bench=. -benchmem .

experiments:
	$(GO) run ./cmd/experiments
